"""The chaos invariant matrix: fault plans x cluster invariants.

Every test here makes the same strong claim: with a fault plan abusing
the fabric underneath a reliable transport, algorithm results are
*bit-identical* to a fault-free run and no cluster invariant (edge
conservation, directory monotonicity, migration quiescence) breaks.
Seeds are fixed so a CI failure replays locally from the test name.
"""

import pytest

from repro.bench import fault_matrix
from repro.net import CrashEvent, FaultPlan, PartitionWindow

from tests.chaos.harness import assert_chaos_survives, chaos_graph

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("name", sorted(fault_matrix()))
def test_fault_matrix(name):
    """Each named plan in the sweep converges bit-equal under abuse."""
    plan = fault_matrix(seed=0)[name]
    report = assert_chaos_survives(plan)
    assert all(s > 0 for s in report.steps.values())


def test_acceptance_scenario():
    """The issue's acceptance bar: >=5% drop and >=5% duplication on
    data messages plus one mid-run agent crash — PageRank and WCC both
    bit-equal to the fault-free run, with retry counters > 0."""
    plan = FaultPlan.data_plane_chaos(
        seed=3, drop_p=0.05, dup_p=0.05, crashes=[CrashEvent(after_step=3)]
    )
    report = assert_chaos_survives(plan)
    assert set(report.bit_equal) == {"pagerank", "wcc"}
    assert report.messages_retried > 0
    assert report.drops_chaos > 0
    assert report.messages_duplicated > 0
    assert report.scale_plan  # the crash actually reshaped the cluster


def test_chaos_replay_is_deterministic():
    """Identical seeds => identical injected-fault counts and identical
    results: a failing plan replays exactly."""
    us, vs = chaos_graph()
    reports = [
        assert_chaos_survives(
            FaultPlan.data_plane_chaos(seed=7, crashes=[CrashEvent(after_step=2)]),
            us,
            vs,
        )
        for _ in range(2)
    ]
    a, b = reports
    assert a.drops_chaos == b.drops_chaos
    assert a.messages_duplicated == b.messages_duplicated
    assert a.messages_retried == b.messages_retried
    assert a.steps == b.steps


def test_partition_window_heals():
    """A transient partition during ingest-era traffic delays but never
    loses messages once it lifts (retransmits carry them across)."""
    # Agents sit at addresses 2..5 (directory master/lead take 0..1);
    # the window isolates two of them during the ingest wave, then
    # lifts well before the runs start.
    plan = FaultPlan(
        seed=11,
        partitions=[PartitionWindow(group=frozenset({3, 4}), start_s=1e-3, end_s=8e-3)],
    )
    report = assert_chaos_survives(plan)
    assert report.drops_partition > 0
    assert report.ok


def test_crash_two_agents_in_sequence():
    """Two crash events compound: the cluster shrinks twice mid-run and
    still converges bit-equal."""
    plan = FaultPlan.data_plane_chaos(
        seed=13,
        drop_p=0.03,
        dup_p=0.03,
        crashes=[CrashEvent(after_step=2), CrashEvent(after_step=4)],
    )
    report = assert_chaos_survives(plan)
    assert len(report.scale_plan) == 2


def test_fault_free_plan_is_transparent():
    """A plan with no rules behaves exactly like no plan at all."""
    report = assert_chaos_survives(FaultPlan(seed=1), expect_faults=False)
    assert report.faults_injected == 0
    assert report.messages_retried == 0
