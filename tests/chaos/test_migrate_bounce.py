"""Regression: EDGE_MIGRATE abandoned against a departed peer.

Found by the chaos property suite while shaking down the data-plane
fast path: a mid-run graceful leave can detach while a chaos-dropped
EDGE_MIGRATE to it is still in reliable-retry backoff.  The fabric
abandons the retry — correctly — but before the bounce fix the sending
hop's ``_migration_acks_pending`` never drained, ``consistent()``
stayed false, and the post-scale resume poll spun the kernel dry
(event-budget exhaustion), with the migrating edges lost to boot.

The fix: the fabric hands the abandoned message back to its sender
(``Agent.on_reliable_abandoned``), which re-acks itself and re-routes
the rows under the current directory.  This test replays the exact
falsifying fault stream (full-precision probabilities matter: the
plan's RNG is consumed per delivery, so rounding changes the run).
"""

import pytest

from repro.net import CrashEvent, FaultPlan

from .harness import assert_chaos_survives, chaos_graph

pytestmark = pytest.mark.chaos


def test_abandoned_migrate_bounces_to_new_owner():
    us, vs = chaos_graph(n=87, m=121, seed=38)
    plan = FaultPlan.data_plane_chaos(
        seed=11416,
        drop_p=0.14026086356816522,
        dup_p=0.12237803311822981,
        reorder_p=0.0008215500510444284,
        delay_p=0.08574042765875695,
        crashes=[CrashEvent(after_step=3)],
    )
    report = assert_chaos_survives(plan, us, vs)
    # The scenario only regresses this bug if the leave actually
    # happened (edge conservation is asserted inside the harness).
    assert report.scale_plan, "plan compiled no mid-run leave"
