"""Migration atomicity under chaos (ROADMAP item 4 acceptance).

A mid-run ring re-weight moves hot partitions over the same
EDGE_MIGRATE path elasticity uses — while the fault plan drops and
duplicates that very traffic and, in the hard scenarios, kills a
participant with migrations in flight.  The claims:

* the run converges bit-identical to a fault-free engine executing the
  same re-weight plan (the mirror idiom of the scale scenarios);
* both rings end up carrying the adopted weights — a crash cannot
  half-apply a plan;
* the cluster invariants (no edge lost/duplicated, fences monotone,
  migration quiescent) hold at every settle point.
"""

import pytest

from repro.bench.chaos import run_rebalance_chaos_scenario
from repro.core import PageRank, WCC
from repro.gen import powerlaw_graph
from repro.net.faults import CrashEvent, FaultPlan

from .harness import chaos_graph

pytestmark = [pytest.mark.chaos, pytest.mark.rebalance]

SKEW_WEIGHTS = {0: 1.8, 1: 0.6, 2: 1.0, 3: 0.7}
REBALANCE_AT = {2: SKEW_WEIGHTS}


def _expected_weights():
    return {i: SKEW_WEIGHTS.get(i, 1.0) for i in range(4)}


def _assert_contract(report, expect_crash: bool):
    for program, equal in report.bit_equal.items():
        assert equal, (
            f"{program} diverged under plan seed {report.plan_seed} "
            f"(steps={report.steps}, drops={report.drops_chaos}, "
            f"dups={report.messages_duplicated}, "
            f"recoveries={report.recoveries})"
        )
    assert report.faults_injected > 0, "plan injected nothing"
    assert report.migrate_messages > 0, "no migration traffic — plan never applied"
    assert report.weights_chaos == report.weights_reference == _expected_weights()
    if expect_crash:
        assert report.recoveries >= 1 or report.elections >= 1


def test_drop_dup_during_migration_pagerank_bit_identical():
    """5% drop + 5% dup on the data plane (EDGE_MIGRATE included), no
    crash: both engines share one partition timeline, so even the
    float-add program must match bit-for-bit."""
    us, vs = chaos_graph()
    plan = FaultPlan.data_plane_chaos(seed=21, drop_p=0.05, dup_p=0.05)
    report = run_rebalance_chaos_scenario(
        us, vs, plan, REBALANCE_AT, programs=[PageRank(max_iters=12), WCC()]
    )
    _assert_contract(report, expect_crash=False)
    assert report.drops_chaos > 0 and report.messages_duplicated > 0


def test_agent_crash_mid_migration_converges():
    """An agent dies abruptly with the re-weight migration in flight
    (5% drop + 5% dup underneath).  Recovery must restart cleanly under
    the adopted weights and still match the fault-free run."""
    us, vs = chaos_graph()
    plan = FaultPlan.data_plane_chaos(
        seed=22,
        drop_p=0.05,
        dup_p=0.05,
        crashes=[CrashEvent(after_step=2, abrupt=True, target="agent")],
    )
    report = run_rebalance_chaos_scenario(
        us,
        vs,
        plan,
        REBALANCE_AT,
        programs=[WCC()],
        heartbeat_interval=0.005,
        lease_timeout=0.025,
        checkpoint_every=2,
    )
    _assert_contract(report, expect_crash=True)
    assert report.recoveries >= 1


def test_lead_failover_mid_migration_converges():
    """The lead directory dies right at the re-weight window: the
    successor's election must carry the adopted weights (term-fenced
    state replication) and the run must still converge bit-identical."""
    us, vs = chaos_graph()
    plan = FaultPlan.data_plane_chaos(
        seed=23,
        drop_p=0.05,
        dup_p=0.05,
        crashes=[CrashEvent(after_step=2, abrupt=True, target="directory")],
    )
    report = run_rebalance_chaos_scenario(us, vs, plan, REBALANCE_AT, programs=[WCC()])
    _assert_contract(report, expect_crash=True)
    assert report.elections >= 1
    assert report.lead_elections >= 1


def test_crash_with_unacked_migration_loses_no_edges():
    """Regression: the migration sweep used to WAL-log the removal the
    moment it shipped a batch.  An agent crashing abruptly with the
    EDGE_MIGRATE still in flight then replayed the removal from its
    WAL — and the edges existed nowhere (on this graph: eight in-copies
    simply vanished, caught by the residency invariant).  The removal
    now enters the log only when the receiving hop acks, so the
    replacement restores the rows and re-ships them under the current
    directory."""
    us, vs, _ = powerlaw_graph(120, 700, alpha=2.0, seed=2)
    plan = FaultPlan.data_plane_chaos(
        seed=22,
        drop_p=0.05,
        dup_p=0.05,
        crashes=[CrashEvent(after_step=2, abrupt=True, target="agent")],
    )
    report = run_rebalance_chaos_scenario(
        us,
        vs,
        plan,
        REBALANCE_AT,
        programs=[WCC()],
        heartbeat_interval=0.005,
        lease_timeout=0.025,
        checkpoint_every=2,
    )
    _assert_contract(report, expect_crash=True)
    assert report.recoveries >= 1


def test_between_runs_migration_under_chaos_preserves_results():
    """The persistent fixpoint moves with the edges even when the
    migration itself runs over a lossy, duplicating fabric."""
    from repro.bench.chaos import build_engine_pair, check_cluster_invariants

    us, vs = chaos_graph()
    plan = FaultPlan.data_plane_chaos(seed=24, drop_p=0.05, dup_p=0.05)
    _, chaos = build_engine_pair(plan, seed=9)
    chaos.ingest_edges(us, vs)
    values = chaos.run(WCC()).values
    report = chaos.rebalance(SKEW_WEIGHTS)
    assert report["migrate_messages"] > 0
    check_cluster_invariants(chaos)
    assert chaos._collect("wcc") == values
    stats = chaos.cluster.network.stats
    assert stats.drops_chaos > 0  # the fabric really was abused
