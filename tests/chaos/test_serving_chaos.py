"""Serving under chaos: Zipf queries through a mid-run abrupt crash.

The acceptance scenario the serving plane is gated on: an open-loop
Zipf query stream runs against the proxies while PageRank executes on
a fabric dropping 5% and duplicating 5% of traffic — *including* the
CLIENT_QUERY/CLIENT_REPLY packets themselves — and one agent is killed
abruptly mid-run.  Required outcome: no query lost, every reply
snapshot-consistent, zero stale reads after convergence, and the run
itself still converges bit-identical to the fault-free reference.
"""

import pytest

from repro.bench.chaos import run_serving_chaos_scenario, serving_chaos_plan
from repro.core import PageRank
from tests.chaos.harness import chaos_graph

pytestmark = [pytest.mark.chaos, pytest.mark.serving]


def _run(seed: int = 21, **kwargs):
    us, vs = chaos_graph()
    return run_serving_chaos_scenario(
        us,
        vs,
        serving_chaos_plan(seed=seed, after_step=3),
        program=PageRank(max_iters=12),
        rate=3000.0,
        duration=0.15,
        n_clients=10_000,
        **kwargs,
    )


def test_serving_survives_abrupt_crash_mid_pagerank():
    report = _run()
    # The scenario actually hurt: faults landed and a recovery ran.
    assert report.drops_chaos > 0
    assert report.recoveries == 1
    # No query lost: everything accepted was answered, nothing ran out
    # of resubmit budget, and the proxies drained completely.
    assert report.submitted > 100
    assert report.outstanding == 0
    assert report.dropped == 0
    # Zero stale reads once converged, and the fault-free reference is
    # matched bit-for-bit — queries are read-only even under recovery.
    assert report.post_run_mismatches == 0
    assert report.bit_equal
    assert report.ok


def test_serving_chaos_is_deterministic_per_seed():
    first = _run(seed=33)
    second = _run(seed=33)
    assert first.submitted == second.submitted
    assert first.delivered == second.delivered
    assert first.snapshot_retries == second.snapshot_retries
    assert first.queries_retried == second.queries_retried
    assert first.recovery_log == second.recovery_log
