"""Agent ingest path: updates, dedup, sketch maintenance, buffering."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.graph import EdgeBatch
from repro.net.message import PacketType


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=2)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


def test_each_edge_stored_twice():
    c = make_cluster()
    c.ingest(EdgeBatch.insertions([0, 1, 2], [1, 2, 0]))
    assert c.total_resident_edges() == 6  # out-copy + in-copy each


def test_duplicate_insert_not_double_counted():
    c = make_cluster()
    c.ingest(EdgeBatch.insertions([0, 0], [1, 1]))
    assert c.total_resident_edges() == 2
    # The sketch must count the effective degree once.
    c.flush_sketches()
    assert c.lead.state.sketch.query(0) == 1
    assert c.lead.state.sketch.query(1) == 1


def test_deletion_removes_both_copies():
    c = make_cluster()
    c.ingest(EdgeBatch.insertions([0], [1]))
    c.ingest(EdgeBatch.deletions([0], [1]))
    assert c.total_resident_edges() == 0


def test_deleting_absent_edge_is_noop():
    c = make_cluster()
    c.ingest(EdgeBatch.deletions([5], [6]))
    assert c.total_resident_edges() == 0
    c.flush_sketches()
    assert c.lead.state.sketch.query(5) == 0


def test_sketch_tracks_degrees_exactly_without_collisions():
    c = make_cluster(sketch_width=4096)
    us = np.arange(20)
    vs = (np.arange(20) + 1) % 20
    c.ingest(EdgeBatch.insertions(us, vs))
    c.flush_sketches()
    for v in range(20):
        assert c.lead.state.sketch.query(v) >= 2  # degree in+out


def test_delete_then_reinsert_restores_sketch():
    c = make_cluster()
    batch = EdgeBatch.insertions(np.arange(10), (np.arange(10) + 3) % 10)
    c.ingest(batch)
    c.flush_sketches()
    before = c.lead.state.sketch.copy()
    c.ingest(EdgeBatch.deletions(batch.us, batch.vs))
    c.ingest(batch)
    c.flush_sketches()
    assert c.lead.state.sketch == before


def test_threshold_crossing_reports_split():
    c = make_cluster(replication_threshold=10)
    star_vs = np.arange(1, 30)
    c.ingest(EdgeBatch.insertions(np.zeros(29, dtype=np.int64), star_vs))
    c.flush_sketches()
    assert 0 in c.lead.state.split_vertices


def test_split_vertex_edges_spread_after_registry_broadcast():
    c = make_cluster(replication_threshold=10)
    star_vs = np.arange(1, 40)
    c.ingest(EdgeBatch.insertions(np.zeros(39, dtype=np.int64), star_vs))
    c.flush_sketches()
    holders = [aid for aid, a in c.agents.items() if 0 in a.out_store]
    assert len(holders) > 1  # out-copies spread across replicas


def test_edges_conserved_across_split_migration():
    c = make_cluster(replication_threshold=10)
    star_vs = np.arange(1, 40)
    c.ingest(EdgeBatch.insertions(np.zeros(39, dtype=np.int64), star_vs))
    c.flush_sketches()
    assert c.total_resident_edges() == 2 * 39


def test_ingest_report_metrics():
    c = make_cluster()
    report = c.ingest(EdgeBatch.insertions(np.arange(100), (np.arange(100) + 1) % 100))
    assert report["edges"] == 100
    assert report["sim_seconds"] > 0
    assert report["edges_per_second"] > 0


def test_agent_metrics_count_updates():
    c = make_cluster()
    c.ingest(EdgeBatch.insertions(np.arange(50), (np.arange(50) + 1) % 50))
    total_applied = sum(a.metrics.updates_applied for a in c.agents.values())
    assert total_applied == 100  # both copies
