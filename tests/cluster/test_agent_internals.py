"""Agent internals: vertex tables, stores, routing caches, state hygiene."""

import numpy as np
import pytest

from repro.cluster.agent import _VertexTable
from repro.core import ElGA, PageRank, WCC
from repro.core.program import RunSpec
from repro.graph import EdgeBatch


def test_vertex_table_pos_roundtrip():
    table = _VertexTable(np.array([2, 5, 9], dtype=np.int64))
    assert table.pos(np.array([5, 2, 9])).tolist() == [1, 0, 2]
    assert len(table) == 3


def test_vertex_table_pos_missing_raises():
    table = _VertexTable(np.array([2, 5, 9], dtype=np.int64))
    with pytest.raises(KeyError):
        table.pos(np.array([3]))
    with pytest.raises(KeyError):
        table.pos(np.array([100]))  # past the end


def test_store_arrays_sorted_and_complete():
    elga = ElGA(nodes=1, agents_per_node=1, seed=24)
    elga.ingest_edges(np.array([3, 1, 3]), np.array([0, 2, 2]))
    agent = elga.cluster.agents[0]
    keys, others = agent._store_arrays(agent.out_store)
    assert keys.tolist() == [1, 3, 3]
    assert others.tolist() == [2, 0, 2]


def test_hosted_vertices_cover_both_stores():
    elga = ElGA(nodes=1, agents_per_node=1, seed=25)
    elga.ingest_edges(np.array([0, 7]), np.array([7, 3]))
    agent = elga.cluster.agents[0]
    hosted = agent._hosted_vertex_ids()
    assert set(hosted.tolist()) == {0, 3, 7}


def test_local_results_during_active_run_reads_table():
    elga = ElGA(nodes=1, agents_per_node=1, seed=26)
    elga.ingest_edges(np.array([0, 1]), np.array([1, 0]))
    agent = elga.cluster.agents[0]
    spec = RunSpec(run_id=50, program=PageRank(max_iters=3), global_n=2)
    agent._on_run_start(spec)
    live = agent.local_results("pagerank")
    assert set(live) == {0, 1}
    assert live[0] == pytest.approx(0.5)  # initial value 1/n
    agent.finalize_run(persist=False)


def test_client_query_of_live_run_value():
    elga = ElGA(nodes=1, agents_per_node=1, seed=27)
    elga.ingest_edges(np.array([0, 1]), np.array([1, 0]))
    agent = elga.cluster.agents[0]
    spec = RunSpec(run_id=51, program=PageRank(max_iters=3), global_n=2)
    agent._on_run_start(spec)
    from repro.net.message import Message, PacketType

    client = elga.cluster.new_client()
    client.query(0, "pagerank")
    elga.cluster.settle()
    assert client.latencies  # answered from the live table
    agent.finalize_run(persist=False)


def test_state_pruned_after_migration():
    """Goal 2 hygiene: persisted state for departed vertices is dropped."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=28)
    us = np.arange(100)
    elga.ingest_edges(us, (us + 1) % 100)
    elga.run(WCC())
    elga.scale_to(12)
    for agent in elga.cluster.agents.values():
        hosted = set(agent.out_store) | set(agent.in_store)
        for v in agent.persistent.get("wcc", {}):
            assert v in hosted


def test_charge_accumulates_during_superstep():
    elga = ElGA(nodes=1, agents_per_node=2, seed=29)
    elga.ingest_edges(np.arange(50), (np.arange(50) + 1) % 50)
    before = {aid: a.available_at() for aid, a in elga.cluster.agents.items()}
    elga.run(PageRank(max_iters=2, tol=1e-15))
    total_busy = sum(
        a.available_at() - before[aid] for aid, a in elga.cluster.agents.items()
    )
    assert total_busy > 0


def test_forwarded_count_zero_in_steady_state():
    elga = ElGA(nodes=2, agents_per_node=2, seed=30)
    elga.ingest_edges(np.arange(60), (np.arange(60) + 1) % 60)
    assert all(a.metrics.updates_forwarded == 0 for a in elga.cluster.agents.values())


def test_batch_clock_increments_per_batch():
    elga = ElGA(nodes=1, agents_per_node=2, seed=31)
    r1 = elga.apply_batch(EdgeBatch.insertions([0], [1]))
    r2 = elga.apply_batch(EdgeBatch.insertions([1], [2]))
    assert r2["batch_id"] == r1["batch_id"] + 1
    # Every agent's directory view carries the latest clock.
    for agent in elga.cluster.agents.values():
        assert agent.dstate.batch_id == r2["batch_id"]
