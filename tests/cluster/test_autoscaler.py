"""Reactive EMA autoscaler policy (§3.4.3, Figure 18)."""

import pytest

from repro.cluster import ReactiveAutoscaler


def test_ema_converges_to_constant_signal():
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=30.0)
    for t in range(0, 300, 5):
        a.observe(100.0, float(t))
    assert a.ema == pytest.approx(100.0, rel=0.01)


def test_target_is_ema_over_scaling_factor():
    a = ReactiveAutoscaler(scaling_factor=10.0)
    a.observe(95.0, 0.0)
    assert a.target() == 10  # ceil(95/10)


def test_target_clamped():
    a = ReactiveAutoscaler(scaling_factor=1.0, min_agents=2, max_agents=8)
    a.observe(0.0, 0.0)
    assert a.target() == 2
    a.observe(1e9, 1.0)
    assert a.target() == 8


def test_cooldown_blocks_rapid_scaling():
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=60.0, ema_window=1.0)
    a.observe(10.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 10
    a.observe(50.0, 5.0)
    # Within the cooldown window: hold.
    assert a.desired(current_agents=10, now=30.0) is None
    a.observe(50.0, 60.0)
    assert a.desired(current_agents=10, now=61.0) is not None


def test_no_action_when_at_target():
    a = ReactiveAutoscaler(scaling_factor=10.0, cooldown=0.0)
    a.observe(100.0, 0.0)
    assert a.desired(current_agents=10, now=1.0) is None


def test_ema_responds_to_step_function():
    """The Figure 18 workload: a step change in query rate pulls the
    EMA (and hence the target) over within a few windows."""
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=30.0, cooldown=0.0)
    for t in range(0, 120, 5):
        a.observe(40.0, float(t))
    low_target = a.target()
    for t in range(120, 300, 5):
        a.observe(160.0, float(t))
    high_target = a.target()
    assert low_target == 4
    assert high_target == 16


def test_scale_down_after_calm():
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=10.0, cooldown=0.0)
    for t in range(0, 50, 2):
        a.observe(200.0, float(t))
    assert a.desired(current_agents=1, now=50.0) == 20
    for t in range(50, 200, 2):
        a.observe(10.0, float(t))
    assert a.desired(current_agents=20, now=200.0) <= 2


def test_history_records_decisions():
    a = ReactiveAutoscaler(scaling_factor=5.0, cooldown=0.0)
    a.observe(25.0, 0.0)
    a.desired(current_agents=1, now=0.0)
    assert len(a.history) == 1
    now, ema, target = a.history[0]
    assert target == 5


def test_validation():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=1, ema_window=0)
