"""Reactive EMA autoscaler policy (§3.4.3, Figure 18)."""

import pytest

from repro.cluster import ReactiveAutoscaler


def test_ema_converges_to_constant_signal():
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=30.0)
    for t in range(0, 300, 5):
        a.observe(100.0, float(t))
    assert a.ema == pytest.approx(100.0, rel=0.01)


def test_target_is_ema_over_scaling_factor():
    a = ReactiveAutoscaler(scaling_factor=10.0)
    a.observe(95.0, 0.0)
    assert a.target() == 10  # ceil(95/10)


def test_target_clamped():
    a = ReactiveAutoscaler(scaling_factor=1.0, min_agents=2, max_agents=8)
    a.observe(0.0, 0.0)
    assert a.target() == 2
    a.observe(1e9, 1.0)
    assert a.target() == 8


def test_cooldown_blocks_rapid_scaling():
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=60.0, ema_window=1.0)
    a.observe(10.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 10
    a.observe(50.0, 5.0)
    # Within the cooldown window: hold.
    assert a.desired(current_agents=10, now=30.0) is None
    a.observe(50.0, 60.0)
    assert a.desired(current_agents=10, now=61.0) is not None


def test_no_action_when_at_target():
    a = ReactiveAutoscaler(scaling_factor=10.0, cooldown=0.0)
    a.observe(100.0, 0.0)
    assert a.desired(current_agents=10, now=1.0) is None


def test_ema_responds_to_step_function():
    """The Figure 18 workload: a step change in query rate pulls the
    EMA (and hence the target) over within a few windows."""
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=30.0, cooldown=0.0)
    for t in range(0, 120, 5):
        a.observe(40.0, float(t))
    low_target = a.target()
    for t in range(120, 300, 5):
        a.observe(160.0, float(t))
    high_target = a.target()
    assert low_target == 4
    assert high_target == 16


def test_scale_down_after_calm():
    a = ReactiveAutoscaler(scaling_factor=10.0, ema_window=10.0, cooldown=0.0)
    for t in range(0, 50, 2):
        a.observe(200.0, float(t))
    assert a.desired(current_agents=1, now=50.0) == 20
    for t in range(50, 200, 2):
        a.observe(10.0, float(t))
    assert a.desired(current_agents=20, now=200.0) <= 2


def test_history_records_decisions():
    a = ReactiveAutoscaler(scaling_factor=5.0, cooldown=0.0)
    a.observe(25.0, 0.0)
    a.desired(current_agents=1, now=0.0)
    assert len(a.history) == 1
    now, ema, target = a.history[0]
    assert target == 5


def test_validation():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=1, ema_window=0)


# ---------------------------------------------------------------------------
# Cooldown edge cases (stabilization-window boundary behavior)
# ---------------------------------------------------------------------------


def test_scale_request_inside_stabilization_window_is_held():
    """A scale-up signal arriving while the window from the *previous*
    action is still open must be held — and must surface again once the
    window closes, not be forgotten."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=60.0, ema_window=1.0)
    a.observe(4.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 4  # action at t=0
    a.observe(12.0, 1.0)
    # Demand spikes immediately after: every probe inside (0, 60) holds.
    for now in (1.0, 30.0, 59.999):
        assert a.desired(current_agents=4, now=now) is None
    # The held request resurfaces as soon as the window closes.
    assert a.desired(current_agents=4, now=60.0) is not None


def test_cooldown_boundary_is_inclusive():
    """Exactly ``cooldown`` seconds after an action, the next action is
    allowed (the wait is "at least", strict inequality on the hold)."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=10.0, ema_window=1.0)
    a.observe(2.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 2
    a.observe(5.0, 5.0)
    assert a.desired(current_agents=2, now=9.999) is None
    assert a.desired(current_agents=2, now=10.0) == 5


def test_blocked_attempts_do_not_reset_cooldown():
    """Probing during the window must not postpone the window's end —
    only *actions* restart the clock."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=10.0, ema_window=1.0)
    a.observe(3.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 3
    for now in (2.0, 4.0, 6.0, 8.0, 9.9):  # hammer the policy
        a.observe(8.0, now)  # sustained demand: EMA converges to 8
        assert a.desired(current_agents=3, now=now) is None
    assert a.desired(current_agents=3, now=10.0) == 8


def test_first_action_not_blocked_by_initial_cooldown():
    """A fresh autoscaler has no prior action: the first decision may
    fire immediately, even at t=0."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=3600.0)
    a.observe(7.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 7


def test_no_op_probe_during_cooldown_then_converged_target():
    """If demand returns to the current size while held, the window's
    end produces no action (the request expired naturally)."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=10.0, ema_window=0.5)
    a.observe(4.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 4
    a.observe(12.0, 1.0)
    assert a.desired(current_agents=4, now=2.0) is None
    # Demand subsides below the current size before the window closes:
    # the decayed EMA's ceiling lands back on the current agent count.
    for t in range(3, 10):
        a.observe(3.0, float(t))
    assert a.desired(current_agents=4, now=10.0) is None


def test_zero_cooldown_allows_back_to_back_actions():
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=0.0, ema_window=0.1)
    a.observe(2.0, 0.0)
    assert a.desired(current_agents=1, now=0.0) == 2
    a.observe(30.0, 1.0)
    assert a.desired(current_agents=2, now=1.0) is not None


# ---------------------------------------------------------------------------
# Integer-boundary hysteresis (deadband)
# ---------------------------------------------------------------------------


def test_boundary_noise_does_not_flap():
    """An EMA wobbling ±ε around an integer boundary must not oscillate
    the cluster.  ``ceil`` alone turns raw=3.05 into target 4 and
    raw=2.95 back into target 3, so each cooldown expiry flapped 3↔4;
    the deadband holds both directions."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=10.0, ema_window=0.1)
    a.observe(3.05, 0.0)
    # raw=3.05 -> ceil says 4, but 3.05 <= 3 + deadband: hold at 3.
    assert a.desired(current_agents=3, now=0.0) is None
    # Noise dips below the boundary: raw=2.95 from a cluster of 4 says
    # target 3, but 2.95 >= 3 - deadband: hold at 4.
    for t in range(1, 6):
        now = float(t) * 20.0  # every probe is past the cooldown
        a.observe(3.05 if t % 2 else 2.95, now)
        assert a.desired(current_agents=4 if t % 2 else 3, now=now) is None


def test_deadband_crossing_still_scales():
    """Hysteresis must not make the policy inert: demand clearly past
    the band scales in both directions."""
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=0.0, ema_window=0.1)
    a.observe(3.4, 0.0)  # raw=3.4 > 3 + 0.25
    assert a.desired(current_agents=3, now=0.0) == 4
    for t in range(1, 60):
        a.observe(2.6, float(t))  # raw -> 2.6 < 3 - 0.25
    assert a.desired(current_agents=4, now=60.0) == 3


def test_deadband_zero_restores_pure_ceil_policy():
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=0.0, deadband=0.0)
    a.observe(3.05, 0.0)
    assert a.desired(current_agents=3, now=0.0) == 4


def test_deadband_validated():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=1.0, deadband=1.0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=1.0, deadband=-0.1)


# ---------------------------------------------------------------------------
# Partition-aware decisions
# ---------------------------------------------------------------------------


def test_partition_aware_plan_names_donors_and_weights():
    from repro.cluster.autoscaler import PartitionAwareAutoscaler

    a = PartitionAwareAutoscaler(scaling_factor=10.0, cooldown=0.0)
    a.observe(75.0, 0.0)  # raw=7.5 -> target 8 from 4 members
    loads = {0: 100.0, 1: 10.0, 2: 10.0, 3: 10.0}
    decision = a.plan(loads, now=0.0)
    assert decision is not None and decision.target == 8
    assert decision.donors == [0]  # only the above-mean agent
    # Inverse-load weights: the hot agent sheds, the idle ones gain.
    assert decision.weights[0] < 1.0 < decision.weights[1]
    assert decision.weights[1] == decision.weights[2] == decision.weights[3]
    assert "scale-up 4->8" in decision.reason


def test_partition_aware_plan_holds_like_desired():
    from repro.cluster.autoscaler import PartitionAwareAutoscaler

    a = PartitionAwareAutoscaler(scaling_factor=10.0, cooldown=0.0)
    a.observe(40.0, 0.0)  # raw=4.0 == current: no action
    assert a.plan({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}, now=0.0) is None


# ---------------------------------------------------------------------------
# Load-snapshot hygiene under failures
# ---------------------------------------------------------------------------


def test_load_snapshot_excludes_crashed_and_suspected_agents():
    """The autoscaler's input — ``cluster.collect_metrics()`` — must not
    size the cluster off ghosts.  A crashed agent's last METRIC_REPORT
    lingers in its (non-lead) directory's store; a suspected agent may
    be seconds from eviction.  Both are dropped from the snapshot."""
    import numpy as np

    from repro.core import ElGA

    elga = ElGA(nodes=2, agents_per_node=2, seed=3)
    rng = np.random.default_rng(1)
    us = rng.integers(0, 30, size=120)
    vs = rng.integers(0, 30, size=120)
    keep = us != vs
    elga.ingest_edges(us[keep], vs[keep])
    cluster = elga.cluster

    snaps = cluster.collect_metrics()
    assert set(snaps) == set(cluster.agents)

    victim = sorted(cluster.agents)[0]
    cluster.crash_agent(victim)
    snaps = cluster.collect_metrics()
    assert victim not in snaps
    # The stale report is still physically present in some directory's
    # store — the filter, not garbage collection, keeps it out.
    assert any(victim in d.metric_store for d in cluster.directories)

    suspect = sorted(cluster.agents)[0]
    cluster.lead._suspected[suspect] = cluster.kernel.now
    try:
        snaps = cluster.collect_metrics()
        assert suspect not in snaps
        assert set(snaps) == set(cluster.agents) - {suspect}
    finally:
        cluster.lead._suspected.pop(suspect, None)


# ---------------------------------------------------------------------------
# Out-of-order samples and history bounds
# ---------------------------------------------------------------------------


def test_stale_sample_gets_zero_weight():
    a = ReactiveAutoscaler(scaling_factor=1.0, ema_window=30.0)
    a.observe(100.0, 10.0)
    before = a.ema
    a.observe(1e6, 4.0)  # late-arriving report from the past
    assert a.ema == before


def test_stale_sample_does_not_rewind_observation_clock():
    """A stale sample must not rewind ``_last_obs_time``: the next
    in-order sample would then see an inflated ``dt`` and be
    over-weighted relative to a run that never saw the straggler."""
    clean = ReactiveAutoscaler(scaling_factor=1.0, ema_window=30.0)
    dirty = ReactiveAutoscaler(scaling_factor=1.0, ema_window=30.0)
    for a in (clean, dirty):
        a.observe(100.0, 0.0)
        a.observe(100.0, 10.0)
    dirty.observe(100.0, 2.0)  # stale: zero weight, no clock movement
    clean.observe(50.0, 11.0)
    dirty.observe(50.0, 11.0)
    assert dirty.ema == clean.ema
    assert dirty._last_obs_time == 11.0


def test_history_is_bounded():
    a = ReactiveAutoscaler(scaling_factor=1.0, cooldown=0.0, history_limit=16)
    a.observe(10.0, 0.0)
    for t in range(200):
        a.desired(current_agents=10, now=float(t))
    assert len(a.history) == 16
    # Ring buffer: oldest decisions evicted, newest retained.
    assert a.history[0][0] == 184.0 and a.history[-1][0] == 199.0


def test_history_limit_validated():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scaling_factor=1.0, history_limit=0)
