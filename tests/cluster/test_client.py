"""ClientProxy query path."""

import numpy as np
import pytest

from repro.core import ElGA, WCC


@pytest.fixture(scope="module")
def served_engine():
    elga = ElGA(nodes=2, agents_per_node=2, seed=10)
    us = np.array([0, 1, 2, 5, 6])
    vs = np.array([1, 2, 0, 6, 5])
    elga.ingest_edges(us, vs)
    elga.run(WCC())
    return elga


def test_query_returns_algorithm_result(served_engine):
    assert served_engine.query(2, "wcc") == 0.0
    assert served_engine.query(6, "wcc") == 5.0


def test_query_unknown_vertex_returns_none(served_engine):
    assert served_engine.query(999, "wcc") is None


def test_query_unknown_program_returns_none(served_engine):
    assert served_engine.query(0, "no-such-algorithm") is None


def test_latency_recorded(served_engine):
    client = served_engine.cluster.clients[0]
    n_before = len(client.latencies)
    served_engine.query(0, "wcc")
    assert len(client.latencies) == n_before + 1
    assert client.latencies[-1] > 0


def test_queries_spread_across_replicas():
    """Split-vertex queries bypass the second hash and pick a random
    replica (§3.4.1) — read load on a hot vertex spreads."""
    elga = ElGA(nodes=2, agents_per_node=3, seed=11, replication_threshold=10)
    star = np.arange(1, 40)
    elga.ingest_edges(np.zeros(39, dtype=np.int64), star)
    elga.run(WCC())
    client = elga.cluster.new_client()
    served_before = {aid: a.metrics.queries_served for aid, a in elga.cluster.agents.items()}
    for _ in range(60):
        client.query(0, "wcc")
    elga.cluster.settle()
    served = {
        aid: a.metrics.queries_served - served_before[aid]
        for aid, a in elga.cluster.agents.items()
    }
    replicas = [aid for aid, count in served.items() if count > 0]
    assert len(replicas) > 1


def test_concurrent_queries_all_answered(served_engine):
    client = served_engine.cluster.new_client()
    answers = []
    for v in range(3):
        client.query(v, "wcc", answers.append)
    served_engine.cluster.settle()
    assert len(answers) == 3
    assert client.replies_received >= 3
