"""ClientProxy failover: pending queries survive an agent eviction.

A query routed at an agent that crashes before replying would hang
forever without help — the crashed endpoint never answers and the proxy
has no timeout.  Instead the proxy reacts to the directory's
post-eviction epoch broadcast: any in-flight query whose target left
the membership is re-issued to the vertex's owner under the new ring.
"""

import numpy as np

from repro.core import ElGA, PageRank


def _build():
    elga = ElGA(nodes=2, agents_per_node=2, seed=11)
    rng = np.random.default_rng(3)
    us = rng.integers(0, 40, size=160)
    vs = rng.integers(0, 40, size=160)
    keep = us != vs
    elga.ingest_edges(us[keep], vs[keep])
    elga.run(PageRank(max_iters=4))
    return elga


def _vertex_owned_by(client, victim):
    """A non-split vertex deterministically routed at ``victim``."""
    split = client.dstate.split_vertices
    for v in range(40):
        if v in split:
            continue
        if client.placer.owner_of_vertex(v, rng=client.rng) == victim:
            return v
    raise AssertionError(f"no vertex owned by agent {victim}")


def test_pending_query_reissued_after_eviction():
    elga = _build()
    cluster = elga.cluster
    client = cluster.new_client()
    victim = sorted(cluster.agents)[0]
    vertex = _vertex_owned_by(client, victim)

    cluster.crash_agent(victim)
    out = []
    client.query(vertex, "pagerank", out.append)
    cluster.settle()
    # The target is dead: no reply, the query is parked in-flight.
    assert out == []
    assert client._pending
    assert client.queries_retried == 0

    # The failure detector's verdict, distilled: the lead evicts the
    # victim and broadcasts the shrunken membership.
    cluster.lead._on_evict_confirm({"agent_id": victim, "evict": True})
    cluster.settle()

    assert client.queries_retried == 1
    assert len(out) == 1  # the re-issued query got answered
    assert not client._pending


def test_queries_to_live_agents_are_not_retried():
    elga = _build()
    cluster = elga.cluster
    client = cluster.new_client()
    victim = sorted(cluster.agents)[0]
    survivor = sorted(cluster.agents)[1]
    vertex = _vertex_owned_by(client, survivor)

    out = []
    client.query(vertex, "pagerank", out.append)
    cluster.settle()
    assert len(out) == 1  # answered before any membership change

    cluster.crash_agent(victim)
    cluster.lead._on_evict_confirm({"agent_id": victim, "evict": True})
    cluster.settle()
    # Nothing was pending at the epoch change: no retries.
    assert client.queries_retried == 0


def test_fresh_queries_after_eviction_route_to_new_owner():
    elga = _build()
    cluster = elga.cluster
    client = cluster.new_client()
    victim = sorted(cluster.agents)[0]
    vertex = _vertex_owned_by(client, victim)

    cluster.crash_agent(victim)
    cluster.lead._on_evict_confirm({"agent_id": victim, "evict": True})
    cluster.settle()

    out = []
    client.query(vertex, "pagerank", out.append)
    cluster.settle()
    assert len(out) == 1  # new ring, live owner, prompt answer
    assert client.queries_retried == 0  # first try hit a live agent
    assert client.placer.owner_of_vertex(vertex, rng=client.rng) != victim
