"""Cost model calibration anchors."""

import pytest

from repro.cluster.costmodel import DEFAULT_COSTS


def test_blogel_edge_op_cheaper_than_elga():
    """§4.7: Blogel's CSR scan beats ElGA's flat hash maps per edge."""
    assert DEFAULT_COSTS.blogel_edge_op < DEFAULT_COSTS.elga_edge_op


def test_graphx_slowest_per_edge():
    assert DEFAULT_COSTS.graphx_edge_op > DEFAULT_COSTS.elga_edge_op


def test_graphx_job_floor_matches_fig15():
    """Figure 15: GraphX 'never took less than 49.45 seconds' on
    Twitter-2010 (1.5 B edges) even for one-edge changes."""
    paper_twitter_m = 1.5e9
    floor = (
        DEFAULT_COSTS.graphx_job_overhead
        + paper_twitter_m * DEFAULT_COSTS.graphx_load_per_edge
        + DEFAULT_COSTS.graphx_stage_overhead
    )
    assert 40.0 < floor < 60.0


def test_gapbs_calibration_matches_948ms():
    """§4.8: GAPbs ≈ 0.94 s on LiveJournal incl. CSR build."""
    m_directed = 69e6
    m_und = 2 * m_directed
    passes = 3
    seconds = m_und * DEFAULT_COSTS.gapbs_build_per_edge + passes * m_und * DEFAULT_COSTS.gapbs_edge_op
    assert seconds == pytest.approx(0.94, rel=0.15)


def test_sketch_query_cost_has_cache_inflection():
    """Figure 7a: lookup overhead steps up once the table leaves cache."""
    c = DEFAULT_COSTS
    small = c.sketch_query_cost(width=2**10, depth=8)
    medium = c.sketch_query_cost(width=2**14, depth=8)
    huge = c.sketch_query_cost(width=2**20, depth=8)
    assert small < medium < huge
    assert huge / small > 5


def test_placement_lookup_grows_logarithmically_with_ring():
    c = DEFAULT_COSTS
    small = c.placement_lookup_cost(4096, 8, ring_positions=100)
    big = c.placement_lookup_cost(4096, 8, ring_positions=100 * 1024)
    assert big > small
    assert big - small < 2 * (small)  # log growth, not linear


def test_all_costs_positive():
    from dataclasses import fields

    for f in fields(DEFAULT_COSTS):
        assert getattr(DEFAULT_COSTS, f.name) > 0, f.name
