"""Data-plane fast path: canonical combining, coalescing, ack batching.

The fast path's contract is *bit-equality*: sender-side combining and
packet coalescing may change what crosses the wire, but never the
floats that come out.  These tests pin the algebra at the unit level
(``combine_pairs``) and the contract at the engine level (combining on
vs off, ack batching on vs off).
"""

import numpy as np
import pytest

from repro.bench.counters import PerfCounters
from repro.cluster.agent import Agent
from repro.cluster.dataplane import RoundBuffers, combine_pairs
from repro.core import ElGA, PageRank
from repro.core.algorithms import WCC
from repro.gen import powerlaw_graph
from repro.net.message import PacketType

pytestmark = pytest.mark.dataplane


# ----------------------------------------------------------------------
# combine_pairs: the canonical per-batch reduction
# ----------------------------------------------------------------------


def _flush(batches, ids, ufunc, identity):
    """Reference re-implementation of Agent._flush_pending_msgs."""
    accum = np.full(len(ids), identity)
    got = np.zeros(len(ids), dtype=bool)
    if batches:
        dst = np.concatenate([b[0] for b in batches])
        val = np.concatenate([b[1] for b in batches])
        order = np.lexsort((val, dst))
        pos = np.searchsorted(ids, dst[order])
        ufunc.at(accum, pos, val[order])
        got[pos] = True
    return accum, got


def _random_batch(rng, ids, n):
    dst = rng.choice(ids, size=n)
    # Adversarial magnitudes: pair-order sensitivity shows up instantly
    # if the fold order is not canonical.
    val = rng.choice([1e-17, 0.1, 1.0, 1e16, 3.7e-5], size=n) * rng.random(n)
    return dst, val


def test_combine_pairs_sorts_and_folds():
    dst = np.array([5, 3, 5, 3, 9], dtype=np.int64)
    val = np.array([2.0, 1.0, 0.5, 4.0, 7.0])
    udst, uval = combine_pairs(dst, val, np.add, 0.0)
    assert udst.tolist() == [3, 5, 9]
    assert uval.tolist() == [0.0 + 1.0 + 4.0, 0.0 + 0.5 + 2.0, 7.0]


def test_combine_pairs_empty():
    dst = np.empty(0, dtype=np.int64)
    val = np.empty(0)
    udst, uval = combine_pairs(dst, val, np.add, 0.0)
    assert len(udst) == 0 and len(uval) == 0


def test_combine_pairs_is_permutation_invariant():
    rng = np.random.default_rng(7)
    ids = np.arange(0, 40, dtype=np.int64)
    dst, val = _random_batch(rng, ids, 300)
    base = combine_pairs(dst, val, np.add, 0.0)
    for _ in range(5):
        perm = rng.permutation(len(dst))
        shuffled = combine_pairs(dst[perm], val[perm], np.add, 0.0)
        assert np.array_equal(base[0], shuffled[0])
        assert np.array_equal(base[1], shuffled[1])  # bitwise


@pytest.mark.parametrize(
    "ufunc,identity", [(np.add, 0.0), (np.minimum, np.inf), (np.maximum, -np.inf)]
)
def test_sender_combine_bit_equals_receiver_fold(ufunc, identity):
    """Level 1 at the sender == level 1 at the receiver, bit for bit:
    flushing the combined batch must equal flushing the raw batch."""
    rng = np.random.default_rng(11)
    ids = np.arange(0, 64, dtype=np.int64)
    dst, val = _random_batch(rng, ids, 500)
    raw_acc, raw_got = _flush([(dst, val)], ids, ufunc, identity)
    combined_acc, combined_got = _flush(
        [combine_pairs(dst, val, ufunc, identity)], ids, ufunc, identity
    )
    assert np.array_equal(raw_acc, combined_acc)  # bitwise, incl. sums
    assert np.array_equal(raw_got, combined_got)


def test_incremental_partials_match_whole_round_reduction():
    """Eagerly pre-reducing each batch on arrival (O(unique dst) peak
    memory) is bit-identical to holding every batch and reducing the
    whole round at flush time."""
    rng = np.random.default_rng(23)
    ids = np.arange(0, 50, dtype=np.int64)
    batches = [_random_batch(rng, ids, n) for n in (120, 1, 75, 300)]
    # Incremental: level 1 per batch on arrival, level 2 at flush.
    eager = [combine_pairs(d, v, np.add, 0.0) for d, v in batches]
    eager_acc, eager_got = _flush(eager, ids, np.add, 0.0)
    # Whole-round: batches held raw, identical two-level reduction at
    # flush time.
    late = _flush(
        [combine_pairs(d, v, np.add, 0.0) for d, v in batches], ids, np.add, 0.0
    )
    assert np.array_equal(eager_acc, late[0])
    assert np.array_equal(eager_got, late[1])
    # Batch arrival order must not matter either (level 2 is canonical).
    reordered_acc, _ = _flush(eager[::-1], ids, np.add, 0.0)
    assert np.array_equal(eager_acc, reordered_acc)


def test_two_level_vs_legacy_single_level():
    """The coalesced two-level reduction is exactly the legacy fold for
    monotone aggregators, and equivalent to rounding for sums."""
    rng = np.random.default_rng(29)
    ids = np.arange(0, 50, dtype=np.int64)
    batches = [_random_batch(rng, ids, n) for n in (200, 80, 33)]
    for ufunc, identity in ((np.minimum, np.inf), (np.maximum, -np.inf)):
        legacy, _ = _flush(batches, ids, ufunc, identity)
        two_level, _ = _flush(
            [combine_pairs(d, v, ufunc, identity) for d, v in batches],
            ids,
            ufunc,
            identity,
        )
        assert np.array_equal(legacy, two_level)  # min/max: bitwise
    legacy, _ = _flush(batches, ids, np.add, 0.0)
    two_level, _ = _flush(
        [combine_pairs(d, v, np.add, 0.0) for d, v in batches], ids, np.add, 0.0
    )
    np.testing.assert_allclose(legacy, two_level, rtol=1e-12)


# ----------------------------------------------------------------------
# RoundBuffers: struct-of-arrays packet merging
# ----------------------------------------------------------------------


def test_round_buffers_merge_vertex_msgs():
    buffers = RoundBuffers()
    buffers.add(2, PacketType.VERTEX_MSG, {"dst": np.array([4, 1]), "val": np.array([0.5, 0.25])})
    buffers.add(2, PacketType.VERTEX_MSG, {"dst": np.array([9]), "val": np.array([1.5])})
    buffers.add(7, PacketType.VERTEX_MSG, {"dst": np.array([3]), "val": np.array([2.0])})
    assert buffers.emissions == 3
    packets = list(buffers.drain_vertex_msgs(step=4, round_=5))
    assert [(a, n) for a, n, _ in packets] == [(2, 2), (7, 1)]
    merged = packets[0][2]
    assert merged["step"] == 4 and merged["round"] == 5
    assert merged["dst"].tolist() == [4, 1, 9]
    assert merged["val"].tolist() == [0.5, 0.25, 1.5]
    assert buffers.empty


def test_round_buffers_merge_replica_rows_in_vertex_order():
    buffers = RoundBuffers()
    buffers.add(
        3,
        PacketType.REPLICA_SYNC,
        {
            "verts": np.array([9, 2]),
            "partials": np.array([0.9, 0.2]),
            "got": np.array([True, False]),
            "outdeg": np.array([3.0, 1.0]),
        },
    )
    buffers.add(
        3,
        PacketType.REPLICA_SYNC,
        {
            "verts": np.array([5]),
            "partials": np.array([0.5]),
            "got": np.array([True]),
            "outdeg": np.array([2.0]),
        },
    )
    ((agent_id, n, payload),) = buffers.drain_replica(PacketType.REPLICA_SYNC, 0, 0)
    assert agent_id == 3 and n == 2
    assert payload["verts"].tolist() == [2, 5, 9]
    assert payload["partials"].tolist() == [0.2, 0.5, 0.9]
    assert payload["got"].tolist() == [False, True, True]
    assert payload["outdeg"].tolist() == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# vectorized edge ingest (_apply_rows) and _store_arrays
# ----------------------------------------------------------------------


def _bare_agent() -> Agent:
    agent = object.__new__(Agent)
    agent.perf = PerfCounters()
    return agent


def _sequential_reference(store, keys, vals, actions):
    return Agent._apply_rows_sequential(_bare_agent(), store, keys, vals, actions)


def _copy_store(store):
    return {k: set(s) for k, s in store.items()}


def test_apply_rows_matches_sequential_semantics():
    rng = np.random.default_rng(17)
    for trial in range(20):
        n = int(rng.integers(1, 60))
        keys = rng.integers(0, 8, size=n).astype(np.int64)
        vals = rng.integers(0, 12, size=n).astype(np.int64)
        actions = rng.choice([1, -1], size=n).astype(np.int8)
        store = {
            int(k): {int(v) for v in rng.integers(0, 12, size=4)}
            for k in rng.integers(0, 8, size=3)
        }
        expected_store = _copy_store(store)
        expected = _sequential_reference(expected_store, keys, vals, actions)
        got_store = _copy_store(store)
        got = _bare_agent()._apply_rows(got_store, keys, vals, actions)
        assert got_store == expected_store, f"trial {trial}: stores diverged"
        # The applied multiset matches even when the bulk path reorders
        # rows (order only matters for insert+remove of the same pair,
        # which routes to the sequential path).
        assert sorted(got) == sorted(expected), f"trial {trial}"


def test_apply_rows_conflicting_pair_keeps_batch_order():
    store = {1: {5}}
    keys = np.array([1, 1], dtype=np.int64)
    vals = np.array([5, 5], dtype=np.int64)
    # remove (1,5) then re-insert it: strict order matters.
    actions = np.array([-1, 1], dtype=np.int8)
    applied = _bare_agent()._apply_rows(store, keys, vals, actions)
    assert applied == [(1, 5, -1), (1, 5, 1)]
    assert store == {1: {5}}


def test_apply_rows_dedups_repeated_inserts():
    store = {}
    keys = np.array([4, 4, 4], dtype=np.int64)
    vals = np.array([7, 7, 8], dtype=np.int64)
    actions = np.array([1, 1, 1], dtype=np.int8)
    applied = _bare_agent()._apply_rows(store, keys, vals, actions)
    assert applied == [(4, 7, 1), (4, 8, 1)]
    assert store == {4: {7, 8}}


def test_store_arrays_skips_empty_buckets():
    arrays = Agent._store_arrays(_bare_agent(), {3: {2, 0}, 1: set(), 2: {9}})
    keys, vals = arrays
    assert keys.tolist() == [2, 3, 3]
    assert vals.tolist() == [9, 0, 2]


# ----------------------------------------------------------------------
# engine-level bit-equality and counters
# ----------------------------------------------------------------------


def _engine(seed=9, **overrides):
    overrides.setdefault("replication_threshold", 40)
    return ElGA(nodes=2, agents_per_node=2, seed=seed, **overrides)


def _graph():
    us, vs, _ = powerlaw_graph(70, 260, alpha=2.1, seed=5)
    return us, vs


@pytest.mark.parametrize("program_cls", [PageRank, WCC])
def test_combining_on_off_bit_equal(program_cls):
    """Sender-side combining must not change a single output bit, for
    the sum (PageRank) and min (WCC) aggregators, splits included."""
    us, vs = _graph()
    fast = _engine(combining=True, coalescing=True)
    plain = _engine(combining=False, coalescing=True)
    fast.ingest_edges(us, vs)
    plain.ingest_edges(us, vs)
    program = program_cls() if program_cls is WCC else program_cls(max_iters=12)
    r_fast = fast.run(program)
    reference = plain.run(program_cls() if program_cls is WCC else program_cls(max_iters=12))
    assert r_fast.values == reference.values  # bitwise on floats
    combined = sum(a.metrics.pairs_combined for a in fast.cluster.agents.values())
    assert combined > 0, "combining never fired — the test exercised nothing"
    assert sum(a.metrics.pairs_combined for a in plain.cluster.agents.values()) == 0
    assert sum(a.metrics.replica_syncs for a in fast.cluster.agents.values()) > 0, (
        "no split vertices — lower replication_threshold"
    )


def test_coalescing_reduces_wire_packets():
    us, vs = _graph()
    fast = _engine()
    legacy = _engine(combining=False, coalescing=False, ack_batch_window=0.0)
    fast.ingest_edges(us, vs)
    legacy.ingest_edges(us, vs)
    r_fast = fast.run(PageRank(max_iters=10))
    r_legacy = legacy.run(PageRank(max_iters=10))
    np.testing.assert_allclose(
        np.array([r_fast.values[k] for k in sorted(r_fast.values)]),
        np.array([r_legacy.values[k] for k in sorted(r_legacy.values)]),
        rtol=1e-12,
    )
    fast_pkts = fast.cluster.network.stats.by_type_count[PacketType.VERTEX_MSG]
    legacy_pkts = legacy.cluster.network.stats.by_type_count[PacketType.VERTEX_MSG]
    # The >= 2x bar lives in benchmarks/bench_dataplane.py on a
    # hub-heavy mix; this small graph just has to show the mechanism.
    assert fast_pkts < legacy_pkts * 0.75
    assert sum(a.metrics.packets_coalesced for a in fast.cluster.agents.values()) > 0


def test_ack_batching_counters_and_accounting():
    us, vs = _graph()
    fast = _engine()  # default ack_batch_window > 0
    fast.ingest_edges(us, vs)
    fast.run(PageRank(max_iters=8))
    stats = fast.cluster.network.stats
    acks = stats.by_type_count[PacketType.VERTEX_MSG_ACK]
    # Every data packet is credited exactly once, in fewer ack packets.
    assert stats.data_ack_credits == (
        stats.by_type_count[PacketType.VERTEX_MSG]
        + stats.by_type_count[PacketType.REPLICA_SYNC]
        + stats.by_type_count[PacketType.REPLICA_VALUE]
    )
    assert acks < stats.data_ack_credits
    assert stats.data_acks_batched > 0
    assert sum(a.metrics.acks_batched for a in fast.cluster.agents.values()) > 0


def test_legacy_mode_disables_fast_path_counters():
    engine = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=9,
        combining=False,
        coalescing=False,
        ack_batch_window=0.0,
    )
    gus, gvs = _graph()
    engine.ingest_edges(gus, gvs)
    engine.run(PageRank(max_iters=6))
    assert sum(a.metrics.pairs_combined for a in engine.cluster.agents.values()) == 0
    assert sum(a.metrics.packets_coalesced for a in engine.cluster.agents.values()) == 0
    assert engine.cluster.network.stats.data_acks_batched == 0


def test_combining_requires_coalescing():
    with pytest.raises(ValueError):
        ElGA(nodes=1, agents_per_node=2, combining=True, coalescing=False)
