"""Directory system: bootstrap, membership, broadcast, sync."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.cluster.directory import DirectoryState
from repro.net.message import Message, PacketType
from repro.sketch import CountMinSketch


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=1)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


def test_membership_reaches_all_agents():
    c = make_cluster()
    version = c.lead.state.version
    assert len(c.lead.state.agents) == 4
    for agent in c.agents.values():
        assert agent.dstate is not None
        assert agent.dstate.version == version
        assert set(agent.dstate.agents) == set(c.agents)


def test_broadcast_size_is_O_P_plus_sketch():
    """§3.3: the full broadcast is O(P + d·w)."""
    c = make_cluster()
    state = c.lead.state
    sketch_bytes = state.sketch.nbytes
    assert state.nbytes >= sketch_bytes
    assert state.nbytes - sketch_bytes < 1000  # small O(P) remainder


def test_version_monotonically_increases():
    c = make_cluster()
    v1 = c.lead.state.version
    c.add_agent()
    assert c.lead.state.version > v1


def test_batch_clock():
    c = make_cluster()
    b0 = c.lead.state.batch_id
    b1 = c.lead.advance_batch_clock()
    c.settle()
    assert b1 == b0 + 1
    for agent in c.agents.values():
        assert agent.dstate.batch_id == b1


def test_batch_clock_lead_only():
    c = make_cluster(n_directories=2)
    with pytest.raises(RuntimeError):
        c.directories[1].advance_batch_clock()


def test_directory_master_round_robin():
    c = make_cluster(n_directories=3)
    # Ask the master directly for assignments.
    answers = []

    class Probe:
        pass

    from repro.net.sockets import ReqRepSocket
    from repro.sim.entity import Entity

    class Client(Entity):
        def __init__(self, network):
            super().__init__(network, "probe")
            self.req = ReqRepSocket(self)

        def handle_message(self, message):
            if message.ptype == PacketType.DIRECTORY_ASSIGN:
                self.req.handle_reply(message)

    client = Client(c.network)
    for _ in range(6):
        client.req.request(
            c.master.address,
            PacketType.DIRECTORY_QUERY,
            on_reply=lambda m: answers.append(m.payload),
        )
        c.settle()
    directory_addresses = [d.address for d in c.directories]
    assert answers == directory_addresses * 2


def test_multiple_directories_stay_in_sync():
    c = make_cluster(n_directories=3)
    c.add_agent()
    versions = {d.state.version for d in c.directories}
    assert len(versions) == 1
    memberships = {tuple(d.state.agent_ids()) for d in c.directories}
    assert len(memberships) == 1


def test_sketch_deltas_merge_into_global():
    c = make_cluster()
    agent = c.agents[0]
    agent.sketch_delta.add(np.array([42] * 10))
    agent.flush_sketch()
    c.settle()
    c.lead._sketch_broadcast_due()
    c.settle()
    assert c.lead.state.sketch.query(42) >= 10
    # And the broadcast carried it to every participant.
    for a in c.agents.values():
        assert a.dstate.sketch.query(42) >= 10


def test_stale_sync_ignored():
    c = make_cluster(n_directories=2)
    follower = c.directories[1]
    current = follower.state.version
    stale = DirectoryState(
        version=current - 1,
        batch_id=0,
        agents={},
        sketch=CountMinSketch(16, 2),
        split_vertices=frozenset(),
    )
    msg = Message(ptype=PacketType.DIRECTORY_SYNC, payload=stale)
    msg.src = c.lead.address
    msg.dst = follower.address
    follower.handle_message(msg)
    assert follower.state.version == current


def test_split_report_enters_registry():
    c = make_cluster()
    agent = c.agents[0]
    agent.push.push(agent.directory_address, PacketType.SPLIT_REPORT, np.array([777]))
    c.settle()
    c.lead._sketch_broadcast_due()
    c.settle()
    assert 777 in c.lead.state.split_vertices


def test_late_subscriber_receives_current_state():
    c = make_cluster()
    streamer = c.new_streamer()
    assert streamer.dstate is not None
    assert streamer.dstate.version == c.lead.state.version
