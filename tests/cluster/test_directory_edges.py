"""Directory edge cases and misuse guards."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.net.message import Message, PacketType


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=44)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


def test_non_lead_cannot_originate_control_broadcasts():
    c = make_cluster(n_directories=2)
    with pytest.raises(RuntimeError):
        c.directories[1].send_advance({"round": 1})
    with pytest.raises(RuntimeError):
        c.directories[1].send_run_start({})


def test_non_lead_rejects_ready_rebroadcast_delivery():
    c = make_cluster(n_directories=2)
    msg = Message(
        ptype=PacketType.READY_REBROADCAST,
        payload={"agent_id": 0, "round": 0, "step": 0, "stats": {}},
    )
    msg.src = c.lead.address
    msg.dst = c.directories[1].address
    with pytest.raises(RuntimeError):
        c.directories[1].handle_message(msg)


def test_unexpected_packet_rejected():
    c = make_cluster()
    msg = Message(ptype=PacketType.CLIENT_QUERY, payload={})
    msg.src = 0
    msg.dst = c.lead.address
    with pytest.raises(ValueError):
        c.lead.handle_message(msg)


def test_master_rejects_unexpected_packets():
    c = make_cluster()
    msg = Message(ptype=PacketType.AGENT_READY, payload={})
    msg.src = 0
    msg.dst = c.master.address
    with pytest.raises(ValueError):
        c.master.handle_message(msg)


def test_master_unregister():
    c = make_cluster(n_directories=2)
    c.master.unregister_directory(c.directories[1].address)
    assert c.master._directories == [c.lead.address]


def test_master_with_no_directories_replies_retry_after():
    """An empty registry is a bootstrap race, not a crash: the master
    answers DIRECTORY_ASSIGN with a retry hint instead of raising."""
    from repro.cluster.directory import DirectoryMaster
    from repro.net import Network
    from repro.sim import SimKernel
    from repro.sim.entity import Entity

    class Sink(Entity):
        def __init__(self, network):
            super().__init__(network, "sink", 0)
            self.got = []

        def handle_message(self, message):
            self.got.append(message)

    kernel = SimKernel()
    network = Network(kernel)
    master = DirectoryMaster(network)
    sink = Sink(network)
    msg = Message(ptype=PacketType.DIRECTORY_QUERY, request_id=1)
    msg.src = sink.address
    msg.dst = master.address
    master.handle_message(msg)
    kernel.run_until_idle()
    assert [m.ptype for m in sink.got] == [PacketType.DIRECTORY_ASSIGN]
    assert sink.got[0].payload == {"retry_after": master.retry_after}


def test_sketch_broadcast_is_throttled():
    """Sketch-only changes batch into at most one broadcast per
    interval; membership changes broadcast immediately."""
    c = make_cluster(sketch_broadcast_interval=10.0)
    version_before = c.lead.state.version
    agent = c.agents[0]
    for _ in range(5):
        agent.sketch_delta.add(np.array([1]))
        agent.flush_sketch()
    c.settle()
    # Several deltas, at most one sketch broadcast fired so far.
    assert c.lead.state.version <= version_before + 1


def test_duplicate_split_report_is_idempotent():
    c = make_cluster()
    agent = c.agents[0]
    for _ in range(3):
        agent.push.push(agent.directory_address, PacketType.SPLIT_REPORT, np.array([55]))
    c.settle()
    c.lead._sketch_broadcast_due()
    c.settle()
    version = c.lead.state.version
    # Re-reporting an already-registered vertex causes no new broadcast.
    agent.push.push(agent.directory_address, PacketType.SPLIT_REPORT, np.array([55]))
    c.settle()
    c.lead._sketch_broadcast_due()
    c.settle()
    assert c.lead.state.version == version
    assert 55 in c.lead.state.split_vertices
