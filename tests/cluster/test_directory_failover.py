"""Control-plane fault tolerance units: master softness, elections, fencing.

The chaos suite (``tests/chaos/test_ctrlplane_chaos.py``) holds the
end-to-end bit-identical claims; this file pins the mechanisms one at a
time — the DirectoryMaster's retry-after and cursor discipline, registry
reconstruction after a master restart, the deterministic lowest-index
election, and the term fence every participant applies to control
traffic.
"""

import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.cluster.directory import DirectoryState
from repro.core import ElGA, PageRank
from repro.gen import powerlaw_graph
from repro.net.message import Message, PacketType
from repro.net.sockets import ReqRepSocket
from repro.sim.entity import Entity
from repro.sketch import CountMinSketch

pytestmark = [pytest.mark.ctrlplane]

FAILOVER = dict(n_directories=3, dir_lease_interval=2e-3, dir_lease_timeout=6e-3)

# Engine runs additionally need the agent failure detector: agents homed
# to the dead lead discover the succession through the heartbeat-tick
# liveness probe, so elections without heartbeats strand them.
ENGINE_FAILOVER = dict(
    FAILOVER, heartbeat_interval=0.005, lease_timeout=0.025, checkpoint_every=2
)


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=1)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


class Probe(Entity):
    """Bare REQ endpoint for talking to the master from a test."""

    def __init__(self, network):
        super().__init__(network, "probe", 0)
        self.req = ReqRepSocket(self)
        self.replies = []

    def handle_message(self, message: Message) -> None:
        self.req.handle_reply(message)

    def query(self, master_address: int):
        self.req.request(
            master_address,
            PacketType.DIRECTORY_QUERY,
            on_reply=lambda m: self.replies.append(m.payload),
        )


# ---------------------------------------------------------------------------
# DirectoryMaster: soft registry, retry-after, cursor clamp
# ---------------------------------------------------------------------------


def test_master_empty_registry_replies_retry_after():
    """DIRECTORY_QUERY against an empty registry must not raise — it
    answers with a retry hint so the requester backs off and re-asks."""
    c = make_cluster()
    c.master._directories = []
    probe = Probe(c.network)
    probe.query(c.master.address)
    c.settle()
    assert probe.replies == [{"retry_after": c.master.retry_after}]


def test_master_skips_dead_directories():
    """A registered-but-detached directory is never handed out."""
    c = make_cluster(**FAILOVER)
    c.crash_directory(2)
    probe = Probe(c.network)
    live = {c.directories[0].address, c.directories[1].address}
    for _ in range(4):
        probe.query(c.master.address)
        c.settle()
    assert set(probe.replies) <= live
    assert set(probe.replies) == live  # still round-robins the survivors


def test_unregister_clamps_round_robin_cursor():
    c = make_cluster(**FAILOVER)
    m = c.master
    addrs = list(m._directories)
    assert len(addrs) == 3
    m._next = 5
    m.unregister_directory(addrs[2])
    assert m._next == 5 % 2
    m.unregister_directory(addrs[1])
    assert m._next == 0
    m.unregister_directory(addrs[0])
    assert m._next == 0 and m._directories == []


def test_master_restart_rewires_and_rebuilds_from_registration():
    """A restarted master starts with an *empty* registry at a new
    endpoint; the cluster rewires the well-known address everywhere and
    the registry rebuilds purely from DIRECTORY_REGISTER traffic."""
    c = make_cluster(**FAILOVER)
    old_address = c.master.address
    c.crash_master()
    c.restart_master()
    assert c.master.address != old_address
    assert c.master._directories == []
    for d in c.directories:
        assert d.master_address == c.master.address
    for agent in c.agents.values():
        assert agent.master_address == c.master.address
    # One heartbeat per directory rebuilds the full registry.
    for d in c.directories:
        register = Message(
            ptype=PacketType.DIRECTORY_REGISTER,
            payload={"index": d.index, "address": d.address},
        )
        register.src = d.address
        register.dst = c.master.address
        c.network.send(register)
    c.settle()
    assert set(c.master._directories) == {d.address for d in c.directories}
    log = [e["event"] for e in c.recovery_log]
    assert log == ["master_crash", "master_restart"]


def test_register_is_idempotent():
    c = make_cluster(**FAILOVER)
    before = list(c.master._directories)
    c.master.register_directory(before[0])
    assert c.master._directories == before


# ---------------------------------------------------------------------------
# Election: deterministic lowest-index succession under a bumped term
# ---------------------------------------------------------------------------


def test_lead_crash_mid_run_elects_lowest_index_survivor():
    elga = ElGA(nodes=2, agents_per_node=2, seed=3, **ENGINE_FAILOVER)
    us, vs, _ = powerlaw_graph(60, 240, alpha=2.2, seed=7)
    elga.ingest_edges(us, vs)
    result = elga.run(PageRank(max_iters=10), crash_plan={3: {"lead": True}})
    assert result.steps == 10
    cluster = elga.cluster
    assert cluster.lead.index == 1
    assert cluster.lead.term == 1
    assert cluster.lead.is_lead
    assert cluster.directories[0].crashed
    assert not cluster.network.is_attached(cluster.directories[0].address)
    elected = [e for e in cluster.recovery_log if e["event"] == "lead_elected"]
    assert [(e["index"], e["term"]) for e in elected] == [(1, 1)]
    # The successor answers further control-plane duty: a second run
    # completes under its term without another election.
    second = elga.run(PageRank(max_iters=5))
    assert second.steps == 5
    assert cluster.lead.term == 1


def test_lead_crash_requires_failover_config():
    """Scheduling a lead crash without a lease cadence (or a peer to
    succeed) is a configuration error, not a hang."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=3)
    us, vs, _ = powerlaw_graph(40, 120, alpha=2.2, seed=7)
    elga.ingest_edges(us, vs)
    with pytest.raises(ValueError):
        elga.run(PageRank(max_iters=5), crash_plan={2: {"lead": True}})


def test_crash_refuses_last_live_directory():
    c = make_cluster()
    with pytest.raises(RuntimeError):
        c.crash_directory()


# ---------------------------------------------------------------------------
# Term fencing
# ---------------------------------------------------------------------------


def _stale_update(state: DirectoryState, term: int) -> Message:
    payload = DirectoryState(
        version=state.version + 100,
        batch_id=state.batch_id,
        agents=dict(state.agents),
        sketch=state.sketch,
        split_vertices=state.split_vertices,
        weights=dict(state.weights),
        epoch=state.epoch,
        term=term,
    )
    return Message(ptype=PacketType.DIRECTORY_UPDATE, payload=payload, term=term)


def test_agent_drops_stale_term_control_traffic():
    c = make_cluster(**FAILOVER)
    agent = c.agents[0]
    agent.term = 2
    before_version = agent.dstate.version
    drops = c.network.stats.stale_term_drops
    agent.handle_message(_stale_update(agent.dstate, term=1))
    assert c.network.stats.stale_term_drops == drops + 1
    assert agent.dstate.version == before_version
    assert agent.term == 2


def test_client_drops_stale_term_control_traffic():
    c = make_cluster(**FAILOVER)
    client = c.new_client()
    client.term = 2
    drops = c.network.stats.stale_term_drops
    client.handle_message(_stale_update(c.lead.state, term=1))
    assert c.network.stats.stale_term_drops == drops + 1
    assert client.term == 2


def test_fence_orders_term_before_version():
    """A fresh lead's first broadcast may carry a *lower* raw version
    than the dead lead's last one; the higher term must still win."""
    sketch = CountMinSketch(16, 2, seed=0)
    old = DirectoryState(
        version=99, batch_id=0, agents={}, sketch=sketch,
        split_vertices=frozenset(), term=0,
    )
    new = DirectoryState(
        version=2, batch_id=0, agents={}, sketch=sketch,
        split_vertices=frozenset(), term=1,
    )
    assert new.fence > old.fence
    assert old.fence < new.fence


def test_agent_adopts_higher_term_update():
    c = make_cluster(**FAILOVER)
    agent = c.agents[0]
    assert agent.term == 0
    bumped = _stale_update(agent.dstate, term=3)
    agent.handle_message(bumped)
    assert agent.term == 3
    assert agent.dstate.version == bumped.payload.version
