"""Property: peer directories mirror the lead's state field-for-field.

Lead failover is only as good as the mirror it promotes: a peer whose
``DIRECTORY_SYNC`` tail diverged from the lead's latest broadcast would
re-broadcast a wrong world under its new term.  Hypothesis drives an
arbitrary interleaving of membership changes (agent joins and leaves)
and edge-delta ingests against a three-directory cluster, then demands
every live peer's mirrored :class:`DirectoryState` equal the lead's —
version, term, epoch, membership, weights, split set, and the count-min
sketch bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ElGACluster
from repro.graph.stream import EdgeBatch

pytestmark = pytest.mark.ctrlplane

# One op per draw: agent join, agent leave, or a small random edge batch
# (mixed insertions; ids beyond the seed graph grow the vertex set).
ops = st.lists(
    st.one_of(
        st.just(("join",)),
        st.just(("leave",)),
        st.tuples(
            st.just("delta"),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=40),
                    st.integers(min_value=0, max_value=40),
                ),
                min_size=1,
                max_size=12,
            ),
        ),
    ),
    max_size=6,
)


def assert_states_mirrored(cluster) -> None:
    lead = cluster.lead
    for peer in cluster.directories:
        if peer is lead or not cluster.network.is_attached(peer.address):
            continue
        mirror = peer.state
        assert mirror.version == lead.state.version
        assert mirror.term == lead.state.term
        assert mirror.batch_id == lead.state.batch_id
        assert mirror.epoch == lead.state.epoch
        assert mirror.agents == lead.state.agents
        assert mirror.weights == lead.state.weights
        assert mirror.split_vertices == lead.state.split_vertices
        assert np.array_equal(mirror.sketch.table, lead.state.sketch.table)
        assert peer.result_versions == lead.result_versions


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), plan=ops)
def test_peer_mirror_equals_lead_after_any_op_sequence(seed, plan):
    cluster = ElGACluster(
        ClusterConfig(nodes=2, agents_per_node=2, seed=seed % 1000, n_directories=3)
    )
    cluster.ingest(EdgeBatch.insertions([0, 1, 2, 3], [1, 2, 3, 0]))
    for op in plan:
        if op[0] == "join":
            cluster.add_agent()
        elif op[0] == "leave":
            if len(cluster.agents) > 2:
                cluster.remove_agent(max(cluster.agents))
        else:
            us = [u for u, v in op[1] if u != v]
            vs = [v for u, v in op[1] if u != v]
            if us:
                cluster.ingest(EdgeBatch.insertions(us, vs))
        cluster.settle()
        assert_states_mirrored(cluster)
