"""Array-native shard storage: EdgeStore, ValueColumn, IdSet, DirtyLog.

These containers replaced the agents' per-vertex ``Dict[int, Set[int]]``
shards and per-program value dicts; they keep the old dict/set surface
for the tests and tools that still speak it, while the hot paths read
the sorted parallel arrays zero-copy.  The units here pin the contract
edges the integration suites only exercise implicitly: effective-row
semantics of batched apply, the insert+remove same-pair fallback, the
wide/negative id packing fallback, version-counter cache invalidation,
and the dict-compat equality both directions.
"""

import numpy as np
import pytest

from repro.cluster.edgestore import (
    DirtyLog,
    EdgeStore,
    IdSet,
    ValueColumn,
    as_column,
    as_dirty_log,
    as_edge_store,
    as_idset,
)


def store_of(pairs):
    s = EdgeStore()
    if pairs:
        k = np.asarray([p[0] for p in pairs], dtype=np.int64)
        o = np.asarray([p[1] for p in pairs], dtype=np.int64)
        s.apply(k, o, np.ones(len(k), dtype=bool))
    return s


class TestEdgeStore:
    def test_apply_returns_effective_rows_in_order(self):
        s = store_of([(1, 2), (1, 3)])
        k = np.asarray([1, 1, 4, 1], dtype=np.int64)
        o = np.asarray([2, 9, 5, 3], dtype=np.int64)
        a = np.asarray([False, True, True, False])
        ek, eo, ea = s.apply(k, o, a)
        # All four rows are effective, reported in the documented
        # deterministic order: inserts lexsorted, then removes lexsorted.
        assert ek.tolist() == [1, 4, 1, 1]
        assert eo.tolist() == [9, 5, 2, 3]
        assert ea.tolist() == [1, 1, -1, -1]
        assert s == {1: {9}, 4: {5}}

    def test_apply_skips_noop_rows(self):
        s = store_of([(1, 2)])
        k = np.asarray([1, 7], dtype=np.int64)
        o = np.asarray([2, 8], dtype=np.int64)
        a = np.asarray([True, False])  # (1,2) already present; (7,8) absent
        ek, eo, ea = s.apply(k, o, a)
        assert len(ek) == 0 and len(eo) == 0 and len(ea) == 0
        assert s == {1: {2}}

    def test_apply_same_pair_insert_then_remove_replays_sequentially(self):
        s = EdgeStore()
        k = np.asarray([3, 3], dtype=np.int64)
        o = np.asarray([4, 4], dtype=np.int64)
        a = np.asarray([True, False])
        ek, eo, ea = s.apply(k, o, a)
        # Both rows are effective (insert landed, then remove undid it)
        # and the store ends empty — order within the batch matters.
        assert ea.tolist() == [1, -1]
        assert len(s) == 0
        # And the mirror: remove-of-absent then insert.
        ek, eo, ea = s.apply(k, o, np.asarray([False, True]))
        assert ek.tolist() == [3] and ea.tolist() == [1]
        assert s == {3: {4}}

    def test_wide_and_negative_ids_use_structured_fallback(self):
        # Packing is (key << 31) | other, which needs 0 <= id < 2^31;
        # ids outside that range must route to the structured dtype.
        big = 2**40
        s = store_of([(big, 1), (-5, 7), (2, big)])
        assert big in s and -5 in s
        assert s.degree(big) == 1 and sorted(s[big]) == [1]
        assert s.contains_pairs(
            np.asarray([big, -5, 2, 2], dtype=np.int64),
            np.asarray([1, 7, big, 3], dtype=np.int64),
        ).tolist() == [True, True, True, False]

    def test_remove_pairs(self):
        s = store_of([(1, 2), (1, 3), (2, 4)])
        s.remove_pairs(
            np.asarray([1, 2, 9], dtype=np.int64),
            np.asarray([3, 4, 9], dtype=np.int64),
        )
        assert s == {1: {2}}

    def test_version_bumps_only_on_change(self):
        s = store_of([(1, 2)])
        v = s.version
        k, o = s.arrays()
        s.apply(
            np.asarray([1], dtype=np.int64),
            np.asarray([2], dtype=np.int64),
            np.asarray([True]),
        )  # no-op insert
        assert s.version == v  # no-op: derived caches keyed on version hold
        k2, o2 = s.arrays()
        assert np.shares_memory(k2, k) and np.shares_memory(o2, o)  # zero-copy
        s.apply(
            np.asarray([5], dtype=np.int64),
            np.asarray([6], dtype=np.int64),
            np.asarray([True]),
        )
        assert s.version > v

    def test_arrays_are_lexsorted(self):
        s = store_of([(5, 1), (1, 9), (1, 2), (3, 3)])
        k, o = s.arrays()
        order = np.lexsort((o, k))
        assert np.array_equal(order, np.arange(len(k)))

    def test_dict_surface_and_equality(self):
        s = store_of([(1, 2), (1, 3), (4, 5)])
        assert {k: set(v.tolist()) for k, v in s.items()} == {1: {2, 3}, 4: {5}}
        assert s == {1: {2, 3}, 4: {5}}
        assert {1: {2, 3}, 4: {5}} == s  # reflected
        assert s != {1: {2}, 4: {5}}
        assert sorted(s.keys()) == [1, 4]
        assert len(s.get(9)) == 0 and s.get(9, set()) == set()
        assert s.degrees(np.asarray([1, 4, 9], dtype=np.int64)).tolist() == [2, 1, 0]
        assert sorted(s.neighbors(1)) == [2, 3]
        assert sorted(s) == [1, 4]  # iteration yields vertex keys

    def test_copy_is_independent(self):
        s = store_of([(1, 2)])
        c = s.copy()
        c.apply(
            np.asarray([8], dtype=np.int64),
            np.asarray([9], dtype=np.int64),
            np.asarray([True]),
        )
        assert s == {1: {2}} and 8 in c

    def test_as_edge_store_from_dict(self):
        s = as_edge_store({1: {2, 3}, 7: {1}})
        assert isinstance(s, EdgeStore)
        assert s == {1: {2, 3}, 7: {1}}
        assert as_edge_store(s) is s


class TestValueColumn:
    def test_lookup_set_many_roundtrip(self):
        c = ValueColumn()
        c.set_many(np.asarray([3, 1, 2], dtype=np.int64), np.asarray([0.3, 0.1, 0.2]))
        vals, found = c.lookup(np.asarray([1, 9, 3], dtype=np.int64))
        assert found.tolist() == [True, False, True]
        assert vals[0] == 0.1 and vals[2] == 0.3 and np.isnan(vals[1])

    def test_set_many_last_write_wins(self):
        c = ValueColumn()
        c.set_many(np.asarray([1, 1], dtype=np.int64), np.asarray([5.0, 7.0]))
        assert c[1] == 7.0

    def test_select_and_restrict(self):
        c = as_column({1: 0.1, 2: 0.2, 3: 0.3})
        ids, vals = c.select(np.asarray([2, 9, 1], dtype=np.int64))
        assert dict(zip(ids.tolist(), vals.tolist())) == {1: 0.1, 2: 0.2}
        c.restrict(np.asarray([1, 3], dtype=np.int64))
        assert c == {1: 0.1, 3: 0.3}

    def test_dict_surface(self):
        c = as_column({4: 0.5})
        assert 4 in c and len(c) == 1
        assert c.get(4) == 0.5 and c.get(5, -1.0) == -1.0
        c[6] = 0.25
        assert dict(c.items()) == {4: 0.5, 6: 0.25}
        assert c == {4: 0.5, 6: 0.25} and {4: 0.5, 6: 0.25} == c


class TestIdSet:
    def test_membership_ops(self):
        s = as_idset({3, 1})
        s.add(7)
        s.discard(1)
        s.discard(99)  # absent: no-op
        assert s == {3, 7}
        assert s.isin(np.asarray([1, 3, 7], dtype=np.int64)).tolist() == [
            False,
            True,
            True,
        ]

    def test_update_restrict_assign(self):
        s = as_idset(set())
        s.update(np.asarray([5, 2, 5], dtype=np.int64))
        s.restrict(np.asarray([2, 9], dtype=np.int64))
        assert s == {2}
        universe = np.asarray([1, 2, 3], dtype=np.int64)
        s.assign(universe, np.asarray([False, True, True]))
        assert s == {2, 3}


class TestDirtyLog:
    def batch(self, keys, others, act):
        k = np.asarray(keys, dtype=np.int64)
        o = np.asarray(others, dtype=np.int64)
        a = np.full(len(k), act, dtype=np.int64)  # +1 insert / -1 remove
        return k, o, a

    def test_rows_and_len(self):
        log = DirtyLog()
        log.append_batch("out", *self.batch([1, 2], [3, 4], 1))
        log.append_batch("in", *self.batch([5], [6], -1))
        assert len(log) == 3
        rows = list(log.rows())
        assert rows[0] == ("out", 1, 3, 1) and rows[2] == ("in", 5, 6, -1)

    def test_suffix_splits_mid_batch(self):
        log = DirtyLog()
        log.append_batch("out", *self.batch([1, 2, 3], [1, 2, 3], 1))
        suffix = log.suffix(1)
        (k, o, a) = suffix["out"]
        assert k.tolist() == [2, 3]

    def test_trim_and_copy(self):
        log = DirtyLog()
        log.append_batch("out", *self.batch([1, 2, 3], [1, 2, 3], 1))
        snap = log.copy()
        log.trim(2)
        assert len(log) == 1 and len(snap) == 3
        # trim drops the oldest rows (watermark GC keeps the suffix)
        assert list(log.rows()) == [("out", 3, 3, 1)]

    def test_extend_accepts_log_and_tuples(self):
        a = DirtyLog()
        a.append_batch("out", *self.batch([1], [2], 1))
        b = DirtyLog()
        b.extend(a)
        b.extend([("in", 7, 8, -1)])
        assert len(b) == 2
        assert list(b.rows()) == [("out", 1, 2, 1), ("in", 7, 8, -1)]

    def test_as_dirty_log_from_list(self):
        log = as_dirty_log([("out", 1, 2, 1), ("out", 3, 4, -1)])
        assert isinstance(log, DirtyLog) and len(log) == 2
