"""Elastic scaling: join, leave, migration, consistency (§3.4.3)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.graph import EdgeBatch
from repro.net.message import PacketType


def loaded_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=4)
    defaults.update(kw)
    c = ElGACluster(ClusterConfig(**defaults))
    rng = np.random.default_rng(0)
    us = rng.integers(0, 200, 1500)
    vs = rng.integers(0, 200, 1500)
    keep = us != vs
    c.ingest(EdgeBatch.insertions(us[keep], vs[keep]))
    c.flush_sketches()
    return c, int(c.total_resident_edges())


def test_join_preserves_every_edge():
    c, total = loaded_cluster()
    c.add_agent()
    assert c.total_resident_edges() == total
    assert c.consistent()


def test_new_agent_receives_load():
    c, _ = loaded_cluster()
    new = c.add_agent()
    assert new.total_edges > 0


def test_leave_preserves_every_edge():
    c, total = loaded_cluster()
    victim = sorted(c.agents)[0]
    c.remove_agent(victim)
    assert c.total_resident_edges() == total
    assert victim not in c.lead.state.agents
    assert c.consistent()


def test_leaving_agent_fully_drains_and_detaches():
    c, _ = loaded_cluster()
    victim_id = sorted(c.agents)[1]
    victim = c.agents[victim_id]
    address = victim.address
    c.remove_agent(victim_id)
    assert victim.total_edges == 0
    assert not c.network.is_attached(address)


def test_join_moves_only_a_fraction():
    """Consistent hashing: one new agent out of P+1 should move roughly
    1/(P+1) of edges, not reshuffle everything (Figure 16)."""
    c, total = loaded_cluster(nodes=4, agents_per_node=4)
    before = c.network.stats.by_type_bytes[PacketType.EDGE_MIGRATE]
    c.add_agent()
    moved_msgs = c.network.stats.by_type_count[PacketType.EDGE_MIGRATE]
    moved_edges = sum(a.metrics.edges_migrated for a in c.agents.values())
    assert 0 < moved_edges < 0.5 * total


def test_scale_to_round_trip_preserves_graph():
    c, total = loaded_cluster()
    c.scale_to(12)
    assert len(c.agents) == 12
    assert c.total_resident_edges() == total
    c.scale_to(2)
    assert len(c.agents) == 2
    assert c.total_resident_edges() == total
    assert c.consistent()


def test_scale_down_to_one_agent():
    c, total = loaded_cluster()
    c.scale_to(1)
    only = next(iter(c.agents.values()))
    assert only.total_edges == total


def test_scale_below_one_rejected():
    c, _ = loaded_cluster()
    with pytest.raises(ValueError):
        c.scale_to(0)


def test_placement_correct_after_scaling():
    """Every resident edge must live exactly where current placement
    says — i.e. a directory update leaves no strays behind."""
    c, _ = loaded_cluster()
    c.scale_to(7)
    for aid, agent in c.agents.items():
        keys, others = agent._store_arrays(agent.out_store)
        if len(keys):
            owners = agent.placer.owner_of_edges(keys, others)
            assert (owners == aid).all()
        keys, others = agent._store_arrays(agent.in_store)
        if len(keys):
            owners = agent.placer.owner_of_edges(keys, others)
            assert (owners == aid).all()


def test_ingest_works_after_scaling():
    c, total = loaded_cluster()
    c.scale_to(6)
    c.ingest(EdgeBatch.insertions([900], [901]))
    assert c.total_resident_edges() == total + 2


def test_repeated_scaling_stable():
    c, total = loaded_cluster()
    for target in (6, 3, 9, 4):
        c.scale_to(target)
        assert c.total_resident_edges() == total
    assert c.consistent()


def test_departing_agent_counts_until_detached():
    """consistent() must keep watching a leaver until it disconnects:
    it is no longer a member, but its migrate batches are still in
    flight and a resume must not race them."""
    c, total = loaded_cluster()
    victim_id = sorted(c.agents)[0]
    victim = c.agents[victim_id]
    c.remove_agent(victim_id, settle=False)
    # Leave initiated but nothing delivered yet: still inconsistent.
    assert not c.consistent()
    c.settle()
    assert not c.network.is_attached(victim.address)
    assert c.consistent()
    assert c.total_resident_edges() == total


def test_agent_removal_between_broadcast_and_ready_collection():
    """Shrink the membership in the middle of a barrier round — after
    the directory broadcast went out, while AGENT_READY messages are
    still being collected.  The barrier must neither deadlock (waiting
    on a departed agent) nor lose state, and the result must match the
    single-process reference."""
    from repro.core import ElGA
    from repro.core.algorithms import WCC

    from tests.conftest import reference_wcc

    engine = ElGA(nodes=2, agents_per_node=2, seed=21)
    rng = np.random.default_rng(2)
    us = rng.integers(0, 120, 800)
    vs = rng.integers(0, 120, 800)
    keep = us != vs
    us, vs = us[keep], vs[keep]
    engine.ingest_edges(us, vs)
    cluster = engine.cluster

    victim_id = sorted(cluster.agents)[-1]
    fired = []

    def on_first_ready(message):
        if message.ptype == PacketType.AGENT_READY and not fired:
            fired.append(True)
            # Schedule the leave for "now": it lands between this READY
            # and the rest of the round's collection.
            cluster.kernel.schedule(0.0, cluster.remove_agent, victim_id, False)

    cluster.network.add_tap(on_first_ready)
    result = engine.run(WCC())
    expected, _ = reference_wcc(us, vs)
    assert fired, "no AGENT_READY observed — the tap never armed"
    assert victim_id not in cluster.agents
    assert {k: int(v) for k, v in result.values.items()} == expected
    cluster.settle()
    assert cluster.consistent()
    assert engine.validate_against_reference()
