"""Eventual consistency: stale views, forwarding, out-of-order arrival."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.graph import EdgeBatch
from repro.net.message import PacketType


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=6)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


def test_update_to_wrong_agent_is_forwarded_and_applied():
    c = make_cluster()
    streamer = c.new_streamer()
    # Deliberately misroute: send every change to one fixed agent.
    batch = EdgeBatch.insertions(np.arange(20), (np.arange(20) + 1) % 20)
    wrong = c.agents[sorted(c.agents)[0]]
    for role in ("out", "in"):
        payload = {
            "role": role,
            "actions": batch.actions,
            "us": batch.us,
            "vs": batch.vs,
            "reply_to": streamer.address,
            "token": 0,
        }
        streamer._outstanding += len(batch)
        streamer.push.push(wrong.address, PacketType.EDGE_UPDATE, payload)
    c.settle()
    assert streamer._outstanding == 0  # every edge acked end-to-end
    assert c.total_resident_edges() == 2 * len(batch)
    forwarded = sum(a.metrics.updates_forwarded for a in c.agents.values())
    assert forwarded > 0


def test_forwarded_edges_placed_correctly():
    c = make_cluster()
    streamer = c.new_streamer()
    batch = EdgeBatch.insertions(np.arange(30), (np.arange(30) + 5) % 30)
    wrong = c.agents[sorted(c.agents)[-1]]
    for role in ("out", "in"):
        payload = {
            "role": role,
            "actions": batch.actions,
            "us": batch.us,
            "vs": batch.vs,
            "reply_to": streamer.address,
            "token": 0,
        }
        streamer._outstanding += len(batch)
        streamer.push.push(wrong.address, PacketType.EDGE_UPDATE, payload)
    c.settle()
    for aid, agent in c.agents.items():
        keys, others = agent._store_arrays(agent.out_store)
        if len(keys):
            assert (agent.placer.owner_of_edges(keys, others) == aid).all()


def test_streamer_with_stale_view_still_completes():
    """A streamer that never saw the post-scale directory update routes
    to old owners; agents forward and everything lands."""
    c = make_cluster()
    streamer = c.new_streamer()
    stale_state = streamer.dstate
    c.scale_to(7)
    # Freeze the streamer on its stale view.
    streamer.dstate = stale_state
    streamer._adopt(stale_state) if False else None
    done = []
    batch = EdgeBatch.insertions(np.arange(40), (np.arange(40) + 3) % 40)
    streamer.stream_batch(batch, on_complete=done.append)
    c.settle()
    assert done  # acked despite the stale view
    assert c.total_resident_edges() == 2 * len(batch)


def test_updates_buffered_during_run_and_applied_after():
    """'While a batch is running, the graph does not change: any edge
    changes are buffered.'"""
    from repro.core import ElGA, PageRank

    elga = ElGA(nodes=2, agents_per_node=2, seed=8)
    elga.ingest_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))
    agent = elga.cluster.agents[0]
    # Simulate an update arriving mid-run by injecting a run state.
    from repro.core.program import RunSpec

    spec = RunSpec(run_id=99, program=PageRank(max_iters=1), global_n=3)
    agent._on_run_start(spec)
    payload = {
        "role": "out",
        "actions": np.array([1], dtype=np.int8),
        "us": np.array([5]),
        "vs": np.array([6]),
        "reply_to": -1,
        "token": 0,
    }
    agent._on_edge_update(payload, count_in_sketch=True)
    assert agent._buffered_updates  # held, not applied
    agent.finalize_run(persist=False)
    assert not agent._buffered_updates  # replayed at run end


def test_no_messages_dropped_in_steady_state():
    c = make_cluster()
    c.ingest(EdgeBatch.insertions(np.arange(100), (np.arange(100) + 1) % 100))
    assert c.network.stats.messages_dropped == 0
