"""Heterogeneous capacity weights — the §3.4.2 future-work extension.

"Future work could explore dynamically adjusting the number of virtual
agents over time based on memory or computation pressure or for
heterogeneous systems."  Implemented: an Agent joins with a capacity
weight that scales its virtual-position count on every participant's
ring, so a 2× machine claims ~2× the edges.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.core import ElGA, WCC
from repro.graph import EdgeBatch
from repro.hashing import ConsistentHashRing
from tests.conftest import reference_wcc


def test_ring_weight_scales_key_share():
    ring = ConsistentHashRing(virtual_factor=100)
    ring.add(0, weight=1.0)
    ring.add(1, weight=1.0)
    ring.add(2, weight=3.0)  # a 3x machine
    keys = np.arange(100_000, dtype=np.uint64)
    counts = np.bincount(ring.lookup(keys), minlength=3)
    share = counts / counts.sum()
    assert share[2] == pytest.approx(0.6, abs=0.08)  # 3 of 5 weight units
    assert ring.weight_of(2) == 3.0
    assert ring.weight_of(0) == 1.0


def test_ring_weight_validation():
    ring = ConsistentHashRing()
    with pytest.raises(ValueError):
        ring.add(0, weight=0)


def test_fractional_weight_gets_at_least_one_position():
    ring = ConsistentHashRing(virtual_factor=4)
    ring.add(0, weight=0.01)
    ring.add(1, weight=1.0)
    assert ring.lookup(12345) in {0, 1}


def test_weighted_agent_claims_proportional_edges():
    cluster = ElGACluster(ClusterConfig(nodes=2, agents_per_node=2, seed=40))
    heavy = cluster.add_agent(weight=4.0)
    rng = np.random.default_rng(0)
    us = rng.integers(0, 2000, 6000)
    vs = rng.integers(0, 2000, 6000)
    keep = us != vs
    cluster.ingest(EdgeBatch.insertions(us[keep], vs[keep]), n_streamers=2)
    loads = cluster.edge_loads()
    normal_mean = np.mean([loads[a] for a in loads if a != heavy.agent_id])
    # The weight-4 agent carries several times a normal agent's share.
    assert loads[heavy.agent_id] > 2.5 * normal_mean


def test_weights_propagate_via_directory_broadcast():
    cluster = ElGACluster(ClusterConfig(nodes=1, agents_per_node=2, seed=41))
    heavy = cluster.add_agent(weight=2.5)
    state = cluster.lead.state
    assert state.weights.get(heavy.agent_id) == 2.5
    # Every participant's ring honors the broadcast weight.
    for agent in cluster.agents.values():
        assert agent.ring.weight_of(heavy.agent_id) == 2.5


def test_weight_cleared_on_leave():
    cluster = ElGACluster(ClusterConfig(nodes=1, agents_per_node=2, seed=42))
    heavy = cluster.add_agent(weight=2.0)
    cluster.remove_agent(heavy.agent_id)
    assert heavy.agent_id not in cluster.lead.state.weights


def test_algorithms_correct_on_heterogeneous_cluster():
    elga = ElGA(nodes=2, agents_per_node=2, seed=43)
    elga.cluster.add_agent(weight=3.0)
    us = np.arange(200)
    vs = (np.arange(200) + 7) % 200
    elga.ingest_edges(us, vs)
    result = elga.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref
    assert elga.validate_against_reference()
