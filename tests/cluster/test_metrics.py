"""Agent metrics collection."""

import numpy as np

from repro.cluster.metrics import AgentMetrics, combine_metrics
from repro.core import ElGA, PageRank


def test_snapshot_round_trip():
    m = AgentMetrics()
    m.edges_processed = 10
    m.queries_served = 3
    snap = m.snapshot()
    assert snap["edges_processed"] == 10
    assert snap["queries_served"] == 3
    assert snap["supersteps"] == 0


def test_combine_sums():
    a = AgentMetrics()
    a.messages_sent = 5
    b = AgentMetrics()
    b.messages_sent = 7
    total = combine_metrics([a.snapshot(), b.snapshot()])
    assert total["messages_sent"] == 12


def test_metrics_populated_by_real_run():
    elga = ElGA(nodes=2, agents_per_node=2, seed=12)
    us = np.arange(30)
    vs = (np.arange(30) + 1) % 30
    elga.ingest_edges(us, vs)
    elga.run(PageRank(max_iters=3, tol=1e-15))
    total = combine_metrics(a.metrics.snapshot() for a in elga.cluster.agents.values())
    assert total["updates_applied"] == 60  # both copies
    assert total["edges_processed"] > 0
    assert total["supersteps"] > 0


def test_metric_report_protocol_reaches_directory():
    """§3.4.3: metrics travel as METRIC_REPORT messages to Directories."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=13)
    elga.ingest_edges(np.arange(20), (np.arange(20) + 1) % 20)
    store = elga.cluster.collect_metrics()
    assert set(store) == set(elga.cluster.agents)
    assert all(snap["updates_applied"] >= 0 for snap in store.values())
    total = sum(snap["updates_applied"] for snap in store.values())
    assert total == 40


def test_metric_reports_refresh():
    elga = ElGA(nodes=1, agents_per_node=2, seed=14)
    elga.ingest_edges(np.arange(10), (np.arange(10) + 1) % 10)
    first = elga.cluster.collect_metrics()
    elga.run(PageRank(max_iters=2, tol=1e-15))
    second = elga.cluster.collect_metrics()
    assert sum(s["supersteps"] for s in second.values()) > sum(
        s["supersteps"] for s in first.values()
    )


def test_snapshot_covers_every_dataclass_field():
    """Field-drift guard: a counter added to AgentMetrics must appear in
    snapshot() (and hence in METRIC_REPORTs and combine_metrics) without
    anyone remembering to update an export list."""
    from dataclasses import fields

    m = AgentMetrics()
    field_names = {f.name for f in fields(AgentMetrics)}
    assert set(m.snapshot()) == field_names
    # Every exported value tracks its attribute, not a stale copy.
    for name in field_names:
        setattr(m, name, 41)
    assert all(v == 41 for v in m.snapshot().values())


def test_combine_covers_every_dataclass_field():
    from dataclasses import fields

    a, b = AgentMetrics(), AgentMetrics()
    for f in fields(AgentMetrics):
        setattr(a, f.name, 1)
        setattr(b, f.name, 2)
    total = combine_metrics([a.snapshot(), b.snapshot()])
    assert set(total) == {f.name for f in fields(AgentMetrics)}
    assert all(v == 3 for v in total.values())
