"""Epoch token propagation and the agents' placement fast path."""

import numpy as np

from repro.core import ElGA


def build(seed=11):
    elga = ElGA(nodes=2, agents_per_node=2, seed=seed)
    rng = np.random.default_rng(seed)
    us = rng.integers(0, 300, size=600).astype(np.int64)
    vs = rng.integers(0, 300, size=600).astype(np.int64)
    elga.ingest_edges(us, vs)
    return elga


def test_broadcast_carries_epoch():
    elga = build()
    for agent in elga.cluster.agents.values():
        assert agent.dstate is not None
        assert agent.dstate.epoch is not None
        term, membership, sketch_v, n_split = agent.dstate.epoch
        assert term == 0  # no election has happened
        assert membership >= len(elga.cluster.agents)
        assert n_split == len(agent.dstate.split_vertices)


def test_batch_clock_bump_preserves_cache_epoch():
    elga = build()
    agents = list(elga.cluster.agents.values())
    before_epochs = [a.dstate.epoch for a in agents]
    before_inval = [
        a.perf.counts.get("placement_epoch_invalidations", 0) for a in agents
    ]
    elga.cluster.lead.advance_batch_clock()
    elga.cluster.settle()
    for agent, epoch, inval in zip(agents, before_epochs, before_inval):
        assert agent.dstate.epoch == epoch
        assert (
            agent.perf.counts.get("placement_epoch_invalidations", 0) == inval
        ), "batch-clock-only broadcast must not invalidate the placement cache"


def test_membership_change_invalidates():
    elga = build()
    agents_before = {
        aid: a.perf.counts.get("placement_epoch_invalidations", 0)
        for aid, a in elga.cluster.agents.items()
    }
    elga.scale_to(len(agents_before) + 1)
    grew = False
    for aid, before in agents_before.items():
        agent = elga.cluster.agents.get(aid)
        if agent is None:
            continue
        if agent.perf.counts.get("placement_epoch_invalidations", 0) > before:
            grew = True
    assert grew, "a join must change the epoch and invalidate caches"


def test_placement_counters_surface():
    elga = build()
    counters = elga.placement_counters()
    counts = counters.counts
    assert counts.get("placement_cache_misses", 0) > 0
    # Ingest resolves each edge at the streamer and again at the agent;
    # repeats within the same epoch must produce hits somewhere.
    assert counts.get("placement_cache_hits", 0) > 0


def test_metrics_report_includes_cache_counters():
    elga = build()
    for agent in elga.cluster.agents.values():
        agent.report_metrics()
    elga.cluster.settle()
    store = elga.cluster.lead.metric_store
    assert store
    total_hits = sum(m.get("placement_cache_hits", 0) for m in store.values())
    total_misses = sum(m.get("placement_cache_misses", 0) for m in store.values())
    assert total_misses > 0
    assert total_hits >= 0
