"""Durability primitives: CheckpointStore, EdgeWAL, RecoveryStore.

Unit coverage for :mod:`repro.cluster.recovery` plus the in-cluster
logging discipline: after any amount of streaming ingest (migrations,
forwards, splits included), ``latest checkpoint + WAL replay`` must
reconstruct an agent's edge stores exactly.
"""

from types import SimpleNamespace

import numpy as np

from repro.cluster.metrics import AgentMetrics, combine_metrics
from repro.cluster.recovery import (
    Checkpoint,
    CheckpointStore,
    EdgeWAL,
    RecoveryStore,
    copy_active,
    copy_store,
    copy_values,
)
from repro.sketch.countmin import CountMinSketch


# ---------------------------------------------------------------------------
# EdgeWAL
# ---------------------------------------------------------------------------


def test_wal_append_replay_roundtrip():
    wal = EdgeWAL()
    wal.append("out", [(1, 2, 1), (1, 3, 1), (4, 5, 1)], sketched=True)
    wal.append("in", [(2, 1, 1), (3, 1, 1)], sketched=True)
    wal.append("out", [(1, 3, -1)], sketched=True)
    out, inn = {}, {}
    replayed = wal.replay(out, inn)
    assert replayed == 6
    assert out == {1: {2}, 4: {5}}
    assert inn == {2: {1}, 3: {1}}


def test_wal_remove_drops_empty_buckets():
    wal = EdgeWAL()
    wal.append("out", [(7, 8, 1)], sketched=False)
    wal.append("out", [(7, 8, -1)], sketched=False)
    out, inn = {}, {}
    wal.replay(out, inn)
    assert out == {} and inn == {}


def test_wal_empty_append_is_noop():
    wal = EdgeWAL()
    wal.append("out", [], sketched=True)
    assert len(wal) == 0
    assert wal.records_logged == 0


def test_wal_truncate_drops_everything():
    wal = EdgeWAL()
    wal.append("out", [(1, 2, 1)], sketched=True)
    assert len(wal) == 1
    wal.truncate()
    assert len(wal) == 0
    out, inn = {}, {}
    assert wal.replay(out, inn) == 0
    # records_logged is a lifetime counter; truncation keeps it.
    assert wal.records_logged == 1


def test_wal_replays_migrated_values_and_activation():
    wal = EdgeWAL()
    wal.append(
        "out",
        [(9, 10, 1)],
        sketched=False,
        values={"pagerank": {9: 0.25}},
        active={"pagerank": {9}},
    )
    out, inn = {}, {}
    persistent = {"pagerank": {1: 0.5}}
    persistent_active = {}
    wal.replay(out, inn, persistent=persistent, persistent_active=persistent_active)
    assert persistent == {"pagerank": {1: 0.5, 9: 0.25}}
    assert persistent_active == {"pagerank": {9}}


def test_wal_value_only_record_survives_without_rows():
    wal = EdgeWAL()
    wal.append("out", [], sketched=False, values={"wcc": {3: 3.0}})
    persistent = {}
    wal.replay({}, {}, persistent=persistent)
    assert persistent == {"wcc": {3: 3.0}}


def test_wal_recounts_sketched_rows_into_delta():
    wal = EdgeWAL()
    wal.append("out", [(5, 6, 1), (5, 7, 1)], sketched=True)
    wal.append("out", [(5, 7, -1)], sketched=True)
    wal.append("out", [(5, 8, 1)], sketched=False)  # migration: not sketched
    delta = CountMinSketch(64, 3, seed=1)
    wal.replay({}, {}, sketch_delta=delta)
    assert delta.query(np.array([5]))[0] == 1  # +2 inserts, -1 remove


# ---------------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------------


def _checkpoint(run_id=None, step=0, edges=((1, 2),)):
    out = {}
    for u, v in edges:
        out.setdefault(u, set()).add(v)
    return Checkpoint(
        out_store=out,
        in_store={},
        persistent={},
        persistent_active={},
        sketch_delta=None,
        run_id=run_id,
        step=step,
    )


def test_checkpoint_store_tracks_latest_and_steps():
    store = CheckpointStore()
    assert store.latest is None
    store.save(_checkpoint())
    store.save(_checkpoint(run_id=1, step=2))
    store.save(_checkpoint(run_id=1, step=4))
    assert store.latest.step == 4
    assert store.steps_for(1) == [2, 4]
    assert store.checkpoint_for(1, 2) is not None
    assert store.checkpoint_for(1, 3) is None
    assert store.checkpoints_taken == 3


def test_checkpoint_store_stashes_pre_run_base():
    """The snapshot from before a run's first mid-run checkpoint is the
    restore base for restart-mode recovery (mid-run checkpoints hold
    partially-converged values)."""
    store = CheckpointStore()
    base = _checkpoint(edges=((10, 11),))
    store.save(base)
    store.save(_checkpoint(run_id=7, step=2))
    assert store.pre_run is base
    # Later checkpoints of the same run leave the stash alone.
    store.save(_checkpoint(run_id=7, step=4))
    assert store.pre_run is base


def test_prune_run_keeps_latest():
    store = CheckpointStore()
    store.save(_checkpoint(run_id=3, step=2))
    store.prune_run(3)
    assert store.steps_for(3) == []
    assert store.latest is not None  # the restore base survives


# ---------------------------------------------------------------------------
# RecoveryStore
# ---------------------------------------------------------------------------


def _fake_agent(agent_id=0):
    return SimpleNamespace(
        agent_id=agent_id,
        out_store={1: {2, 3}},
        in_store={2: {1}},
        persistent={"pagerank": {1: 0.9}},
        persistent_active={"pagerank": {1}},
        sketch_delta=CountMinSketch(64, 3, seed=0),
    )


def test_recovery_store_slots_are_stable_and_forgettable():
    store = RecoveryStore()
    slot = store.slot(4)
    assert store.slot(4) is slot
    store.forget(4)
    assert store.slot(4) is not slot


def test_snapshot_agent_copies_state_and_truncates_wal():
    store = RecoveryStore()
    agent = _fake_agent(agent_id=2)
    store.slot(2).wal.append("out", [(1, 2, 1)], sketched=True)
    checkpoint = store.snapshot_agent(agent)
    assert len(store.slot(2).wal) == 0
    assert checkpoint.n_edges == 3
    # Deep copies: mutating the agent must not leak into the snapshot.
    agent.out_store[1].add(99)
    agent.persistent["pagerank"][1] = 0.0
    assert checkpoint.out_store == {1: {2, 3}}
    assert checkpoint.persistent == {"pagerank": {1: 0.9}}


def test_recovery_store_prune_run_spans_all_slots():
    store = RecoveryStore()
    store.slot(0).checkpoints.save(_checkpoint(run_id=5, step=2))
    store.slot(1).checkpoints.save(_checkpoint(run_id=5, step=2))
    store.prune_run(5)
    assert store.slot(0).checkpoints.steps_for(5) == []
    assert store.slot(1).checkpoints.steps_for(5) == []


def test_copy_helpers_deep_copy():
    out = {1: {2}}
    vals = {"p": {1: 0.5}}
    act = {"p": {1}}
    c_out, c_vals, c_act = copy_store(out), copy_values(vals), copy_active(act)
    out[1].add(3)
    vals["p"][2] = 1.0
    act["p"].add(2)
    assert c_out == {1: {2}}
    assert c_vals == {"p": {1: 0.5}}
    assert c_act == {"p": {1}}


# ---------------------------------------------------------------------------
# In-cluster logging discipline
# ---------------------------------------------------------------------------


def test_checkpoint_plus_wal_rebuilds_every_agent_store():
    """After arbitrary streaming ingest (placement forwards, migrations,
    sketch flushes), each agent's durable slot must reconstruct its edge
    stores exactly: restore = latest checkpoint + WAL suffix replay."""
    from repro.core import ElGA

    elga = ElGA(nodes=2, agents_per_node=2, seed=13)
    rng = np.random.default_rng(8)
    us = rng.integers(0, 50, size=200)
    vs = rng.integers(0, 50, size=200)
    keep = us != vs
    elga.ingest_edges(us[keep], vs[keep])
    for agent_id, agent in elga.cluster.agents.items():
        slot = elga.cluster.recovery.slot(agent_id)
        base = slot.checkpoints.latest
        out = copy_store(base.out_store) if base else {}
        inn = copy_store(base.in_store) if base else {}
        slot.wal.replay(out, inn)
        assert out == agent.out_store, f"agent {agent_id} out-store diverged"
        assert inn == agent.in_store, f"agent {agent_id} in-store diverged"


# ---------------------------------------------------------------------------
# Observability counters
# ---------------------------------------------------------------------------


def test_recovery_counters_survive_snapshot_and_combine():
    a = AgentMetrics()
    a.heartbeats_sent = 3
    a.checkpoints_taken = 2
    a.checkpoints_restored = 1
    a.wal_records_logged = 40
    a.wal_records_replayed = 7
    a.recoveries_participated = 1
    b = AgentMetrics()
    b.heartbeats_sent = 5
    snap = a.snapshot()
    for key in (
        "heartbeats_sent",
        "checkpoints_taken",
        "checkpoints_restored",
        "wal_records_logged",
        "wal_records_replayed",
        "recoveries_participated",
    ):
        assert key in snap
    total = combine_metrics([a.snapshot(), b.snapshot()])
    assert total["heartbeats_sent"] == 8
    assert total["wal_records_logged"] == 40


def test_network_stats_track_failure_detection():
    from repro.net.network import NetworkStats

    stats = NetworkStats()
    stats.heartbeats_missed += 2
    stats.lease_expirations += 1
    snap = stats.snapshot()
    assert snap.heartbeats_missed == 2
    assert snap.lease_expirations == 1
