"""The split-vertex (replica) protocol, end to end (§3.4)."""

import numpy as np
import pytest

from repro.core import ElGA, DegreeCount, PageRank, WCC
from repro.graph import EdgeBatch


@pytest.fixture()
def star_engine():
    """A hub vertex (0) with enough degree to split several ways."""
    elga = ElGA(nodes=2, agents_per_node=4, seed=22, replication_threshold=15)
    spokes = np.arange(1, 61)
    us = np.concatenate([np.zeros(60, dtype=np.int64), spokes])
    vs = np.concatenate([spokes, np.zeros(60, dtype=np.int64)])
    elga.ingest_edges(us, vs)
    return elga


def hub_replicas(elga, vertex=0):
    agent = elga.cluster.agents[sorted(elga.cluster.agents)[0]]
    k = int(agent.placer.replication_factor(vertex)[0])
    return agent.ring.successors(vertex, k)


def test_hub_is_registered_and_split(star_engine):
    assert 0 in star_engine.cluster.lead.state.split_vertices
    replicas = hub_replicas(star_engine)
    assert len(replicas) > 1


def test_hub_edges_spread_over_replicas_only(star_engine):
    replicas = set(hub_replicas(star_engine))
    holders = {
        aid
        for aid, a in star_engine.cluster.agents.items()
        if 0 in a.out_store or 0 in a.in_store
    }
    assert holders <= replicas
    assert len(holders) > 1


def test_all_participants_agree_on_primary(star_engine):
    primaries = {
        a.placer.primary_of(0) for a in star_engine.cluster.agents.values()
    }
    assert len(primaries) == 1


def test_split_vertex_aggregation_exact(star_engine):
    """DegreeCount across a split hub: partials from every replica must
    combine to the exact global in-degree."""
    result = star_engine.run(DegreeCount())
    assert result.values[0] == 60.0  # hub in-degree
    for spoke in range(1, 61):
        assert result.values[spoke] == 1.0


def test_split_vertex_outdegree_totals(star_engine):
    """PageRank divides by the *global* out-degree of a split vertex;
    the replica degree-sync must produce it on every replica."""
    result = star_engine.run(PageRank(max_iters=2, tol=1e-15))
    # Closed form for the star: each spoke's only in-neighbor is the
    # hub, whose out-degree is 60 *summed across replicas*.  A replica
    # scattering with its local partial out-degree would inflate every
    # spoke.
    n = star_engine.global_n  # 61
    d, base = 0.85, 0.15 / 61
    hub_1 = base + d * 60 * (1.0 / n)       # hub after apply 1
    spoke_2 = base + d * hub_1 / 60.0       # spoke after apply 2
    assert result.values[1] == pytest.approx(spoke_2, abs=1e-12)
    spokes = [result.values[v] for v in range(1, 61)]
    assert max(spokes) - min(spokes) < 1e-15  # all spokes identical


def test_replica_values_identical_across_replicas(star_engine):
    star_engine.run(WCC())
    values = {
        aid: a.persistent["wcc"].get(0)
        for aid, a in star_engine.cluster.agents.items()
        if 0 in a.persistent.get("wcc", {})
    }
    assert len(set(values.values())) == 1


def test_replication_factor_grows_with_degree():
    # A headroom threshold so k stays below the cluster-size cap.
    elga = ElGA(nodes=2, agents_per_node=4, seed=23, replication_threshold=40)
    spokes = np.arange(1, 61)
    elga.ingest_edges(
        np.concatenate([np.zeros(60, dtype=np.int64), spokes]),
        np.concatenate([spokes, np.zeros(60, dtype=np.int64)]),
    )
    k_before = len(hub_replicas(elga))
    assert k_before > 1
    more = np.arange(100, 200)
    elga.apply_batch(EdgeBatch.insertions(np.zeros(100, dtype=np.int64), more))
    k_after = len(hub_replicas(elga))
    assert k_after > k_before
    # Results stay exact after the growth.
    result = elga.run(DegreeCount())
    assert result.values[0] == 60.0  # in-degree unchanged (we added out-edges)


def test_split_protocol_message_types_present(star_engine):
    from repro.net.message import PacketType

    star_engine.run(PageRank(max_iters=2, tol=1e-15))
    stats = star_engine.cluster.network.stats
    assert stats.by_type_count[PacketType.REPLICA_SYNC] > 0
    assert stats.by_type_count[PacketType.REPLICA_VALUE] > 0
