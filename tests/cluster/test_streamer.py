"""Streamer flow control and completion."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.graph import EdgeBatch


def make_cluster():
    return ElGACluster(ClusterConfig(nodes=2, agents_per_node=2, seed=9))


def test_completion_callback_fires_at_ack_time():
    c = make_cluster()
    s = c.new_streamer()
    done = []
    start = c.kernel.now
    s.stream_batch(EdgeBatch.insertions(np.arange(10), np.arange(10) + 100), done.append)
    c.settle()
    assert len(done) == 1
    assert done[0] > start  # took simulated time


def test_empty_batch_completes_immediately():
    c = make_cluster()
    s = c.new_streamer()
    done = []
    s.stream_batch(EdgeBatch.insertions([], []), done.append)
    c.settle()
    assert len(done) == 1


def test_busy_streamer_rejects_second_batch():
    c = make_cluster()
    s = c.new_streamer()
    s.stream_batch(EdgeBatch.insertions([0], [1]))
    assert s.busy
    with pytest.raises(RuntimeError):
        s.stream_batch(EdgeBatch.insertions([2], [3]))
    c.settle()
    assert not s.busy


def test_streamer_without_state_rejects():
    c = make_cluster()
    s = c.new_streamer()
    s.placer = None
    with pytest.raises(RuntimeError):
        s.stream_batch(EdgeBatch.insertions([0], [1]))


def test_counters_track_traffic():
    c = make_cluster()
    s = c.new_streamer()
    s.stream_batch(EdgeBatch.insertions(np.arange(25), np.arange(25) + 50))
    c.settle()
    assert s.edges_sent == 25
    assert s.edges_acked == 50  # out-copy + in-copy acks


def test_parallel_streamers_partition_work():
    c = make_cluster()
    batch = EdgeBatch.insertions(np.arange(100), (np.arange(100) + 1) % 100)
    report = c.ingest(batch, n_streamers=4)
    assert len(c.streamers) == 4
    assert report["edges"] == 100
    assert c.total_resident_edges() == 200


def test_insertion_rate_scales_with_agents():
    """More agents absorb a stream faster (the Figure 14 shape)."""
    def rate(agents_per_node):
        c = ElGACluster(ClusterConfig(nodes=2, agents_per_node=agents_per_node, seed=9))
        rng = np.random.default_rng(1)
        us = rng.integers(0, 500, 4000)
        vs = rng.integers(0, 500, 4000)
        keep = us != vs
        report = c.ingest(EdgeBatch.insertions(us[keep], vs[keep]), n_streamers=2)
        return report["edges_per_second"]

    assert rate(4) > rate(1)
