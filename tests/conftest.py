"""Shared fixtures and reference helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ElGA
from repro.gen import powerlaw_graph
from repro.graph import compact_ids, pagerank_csr, wcc_labels


@pytest.fixture(scope="session")
def small_graph():
    """A tiny deterministic directed graph (cycle + chords)."""
    us = np.array([0, 1, 2, 3, 4, 0, 2, 4], dtype=np.int64)
    vs = np.array([1, 2, 3, 4, 0, 2, 0, 1], dtype=np.int64)
    return us, vs, 5


@pytest.fixture(scope="session")
def skewed_graph():
    """A power-law graph large enough to produce split vertices."""
    us, vs, n = powerlaw_graph(1500, 15000, alpha=2.1, seed=11)
    return us, vs, n


@pytest.fixture()
def engine(small_graph):
    """A 4-agent engine pre-loaded with the small graph."""
    us, vs, _ = small_graph
    elga = ElGA(nodes=2, agents_per_node=2, seed=3)
    elga.ingest_edges(us, vs)
    return elga


@pytest.fixture(scope="module")
def skewed_engine(skewed_graph):
    """A 12-agent engine with split vertices (module-scoped: building it
    ingests 15k edges)."""
    us, vs, _ = skewed_graph
    elga = ElGA(nodes=3, agents_per_node=4, seed=5, replication_threshold=300)
    elga.ingest_edges(us, vs, n_streamers=3)
    return elga


def reference_pagerank(us, vs, **kwargs):
    """PageRank reference on the compacted id space, as a vertex map."""
    cu, cv, ids = compact_ids(us, vs)
    ranks, iters = pagerank_csr(cu, cv, len(ids), **kwargs)
    return {int(ids[i]): float(ranks[i]) for i in range(len(ids))}, iters


def reference_wcc(us, vs):
    """WCC reference: vertex -> minimum original id in its component."""
    cu, cv, ids = compact_ids(us, vs)
    labels, iters = wcc_labels(cu, cv, len(ids))
    return {int(ids[i]): int(ids[labels[i]]) for i in range(len(ids))}, iters
