"""Simulation determinism: the property the harness rests on.

Every result, simulated timestamp, and message count must replay
bit-identically from a seed — including under elastic churn — because
the benchmark tables are only meaningful if reruns reproduce them.
"""

import numpy as np

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch


def _full_scenario(seed):
    us, vs, n = powerlaw_graph(500, 5000, alpha=2.2, seed=90)
    elga = ElGA(nodes=2, agents_per_node=3, seed=seed, replication_threshold=300)
    elga.ingest_edges(us, vs, n_streamers=2)
    pr = elga.run(PageRank(max_iters=4, tol=1e-15), scale_plan={2: 10})
    elga.apply_batch(EdgeBatch.insertions([n + 1, n + 2], [0, 1]))
    wcc = elga.run(WCC(), incremental=True)
    elga.scale_to(4)
    return {
        "pr_values": tuple(sorted(pr.values.items())),
        "pr_time": pr.sim_seconds,
        "wcc_values": tuple(sorted(wcc.values.items())),
        "sim_now": elga.cluster.kernel.now,
        "events": elga.cluster.kernel.events_processed,
        "messages": elga.cluster.network.stats.messages_sent,
        "bytes": elga.cluster.network.stats.bytes_sent,
    }


def test_identical_seed_identical_everything():
    a = _full_scenario(seed=7)
    b = _full_scenario(seed=7)
    assert a == b  # values, times, event and byte counts — everything


def test_different_seed_different_timing_same_results():
    """Seeds change entity randomness (and hence placement and message
    grouping), but algorithm results are seed-independent — exactly for
    WCC (integral labels), to summation-order rounding for PageRank."""
    a = _full_scenario(seed=7)
    b = _full_scenario(seed=8)
    pa, pb = dict(a["pr_values"]), dict(b["pr_values"])
    assert set(pa) == set(pb)
    assert all(abs(pa[v] - pb[v]) < 1e-12 for v in pa)
    assert a["wcc_values"] == b["wcc_values"]


def test_timing_is_wall_clock_independent():
    """Simulated time comes from cost models only: re-running the same
    scenario gives the same per-step durations to the last bit."""
    us, vs, n = powerlaw_graph(400, 4000, alpha=2.2, seed=91)

    def durations():
        elga = ElGA(nodes=2, agents_per_node=2, seed=9)
        elga.ingest_edges(us, vs)
        return elga.run(PageRank(max_iters=5, tol=1e-15)).round_durations

    assert durations() == durations()
