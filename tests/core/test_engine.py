"""Engine facade: ingest, runs, queries, results, scaling."""

import numpy as np
import pytest

from repro.core import DegreeCount, ElGA, PageRank, WCC
from repro.graph import EdgeBatch


def test_degree_count_exact(engine, small_graph):
    us, vs, _ = small_graph
    result = engine.run(DegreeCount())
    indeg = np.bincount(vs, minlength=5)
    for v in range(5):
        assert result.values[v] == indeg[v]
    assert result.steps == 1


def test_global_counts(engine):
    assert engine.global_n == 5
    assert engine.global_m == 8
    assert engine.validate_against_reference()


def test_global_counts_without_reference(small_graph):
    us, vs, _ = small_graph
    elga = ElGA(nodes=2, agents_per_node=2, seed=3, keep_reference=False)
    elga.ingest_edges(us, vs)
    assert elga.global_n == 5
    assert elga.global_m == 8
    with pytest.raises(RuntimeError):
        elga.validate_against_reference()


def test_run_result_metadata(engine):
    result = engine.run(PageRank(max_iters=4, tol=1e-15))
    assert result.program_name == "pagerank"
    assert result.mode == "sync"
    assert result.steps == 4
    assert result.sim_seconds > 0
    assert len(result.per_step_seconds()) >= 4
    assert result.mean_step_seconds() > 0
    assert len(result.stats_history) >= 4


def test_run_result_helpers(engine):
    result = engine.run(WCC())
    assert result.value(0) == 0.0
    assert result.value(12345) is None
    arr = result.as_array(5)
    assert not np.isnan(arr).any()


def test_run_ids_increment(engine):
    a = engine.run(DegreeCount())
    b = engine.run(DegreeCount())
    assert b.run_id == a.run_id + 1


def test_multiple_programs_keep_separate_state(engine):
    engine.run(WCC())
    engine.run(PageRank(max_iters=3, tol=1e-15))
    assert engine.query(0, "wcc") == 0.0
    pr_value = engine.query(0, "pagerank")
    assert pr_value is not None and 0 < pr_value < 1


def test_scale_returns_move_stats(engine):
    # Enough vertices that a join is guaranteed to claim some.
    us = np.arange(100, 160)
    engine.apply_batch(EdgeBatch.insertions(us, us + 1))
    info = engine.scale_to(7)
    assert info["agents"] == 7
    assert info["migrate_messages"] > 0
    assert engine.n_agents == 7
    assert engine.validate_against_reference()


def test_empty_graph_run_halts():
    elga = ElGA(nodes=2, agents_per_node=2, seed=20)
    result = elga.run(WCC())
    assert result.values == {}


def test_single_agent_cluster(small_graph):
    us, vs, _ = small_graph
    elga = ElGA(nodes=1, agents_per_node=1, seed=21)
    elga.ingest_edges(us, vs)
    result = elga.run(WCC())
    assert all(x == 0.0 for x in result.values.values())


def test_ingest_reports_accumulate(engine):
    assert len(engine.ingest_reports) == 1
    engine.apply_batch(EdgeBatch.insertions([7], [8]))
    assert len(engine.ingest_reports) == 2


def test_config_overrides_pass_through():
    elga = ElGA(nodes=1, agents_per_node=2, hash_name="mult", sketch_width=512)
    assert elga.config.hash_name == "mult"
    assert elga.config.sketch_width == 512
