"""The five design goals (§1.1), tested as system properties."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch


@pytest.fixture(scope="module")
def loaded():
    us, vs, n = powerlaw_graph(1500, 18000, alpha=2.1, seed=80)
    elga = ElGA(nodes=4, agents_per_node=4, seed=81, replication_threshold=300)
    elga.ingest_edges(us, vs, n_streamers=4)
    return elga, us, vs, n


def test_goal1_skewed_degree_distributions(loaded):
    """Goal 1: operates on graphs with skewed degree distributions —
    hubs split instead of sinking one agent."""
    elga, us, vs, n = loaded
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    assert deg.max() > 20 * deg[deg > 0].mean()  # the input is skewed
    assert len(elga.cluster.lead.state.split_vertices) > 0
    result = elga.run(PageRank(max_iters=5, tol=1e-15))
    assert len(result.values) > 0


def test_goal2_memory_bounded_per_participant(loaded):
    """Goal 2: every participant holds O((n+m)/P + P) state — resident
    edges stay near the fair share plus the hub split granularity, and
    the directory broadcast is O(P + d·w), not O(n)."""
    elga, us, vs, n = loaded
    P = elga.n_agents
    m_copies = elga.cluster.total_resident_edges()
    fair = m_copies / P
    for aid, load in elga.cluster.edge_loads().items():
        assert load < 4 * fair + elga.config.replication_threshold, aid
    state = elga.cluster.lead.state
    sketch_and_membership = state.sketch.nbytes + 16 * P
    assert state.nbytes <= sketch_and_membership + 8 * len(state.split_vertices) + 64
    assert state.nbytes < 1e7  # fixed-size, graph-independent


def test_goal3_log_p_lookups(loaded):
    """Goal 3: frequent operations depend on P only as O(log P)."""
    costs = loaded[0].config.costs
    lookup_small = costs.placement_lookup_cost(4096, 8, ring_positions=8 * 100)
    lookup_big = costs.placement_lookup_cost(4096, 8, ring_positions=8192 * 100)
    # 1024x more ring positions -> only log-factor growth (< 2.5x here).
    assert lookup_big / lookup_small < 2.5


def test_goal4_low_latency_updates_with_concurrent_queries(loaded):
    """Goal 4: continuous updates, low-latency maintenance, concurrent
    queries."""
    elga, us, vs, n = loaded
    elga.run(WCC())
    batch = EdgeBatch.insertions([n + 1], [0])
    report = elga.apply_batch(batch)
    result = elga.run(WCC(), incremental=True)
    # A one-edge change is maintained in a couple of supersteps...
    assert result.steps <= 3
    # ...and queries answer concurrently with system activity.
    assert elga.query(n + 1, "wcc") == result.values[n + 1]


def test_goal5_scale_up_and_down_during_computation(loaded):
    """Goal 5: scaling up or down, manually, during computation."""
    elga, us, vs, n = loaded
    before = elga.n_agents
    result = elga.run(PageRank(max_iters=6, tol=1e-15), scale_plan={2: before + 6})
    assert elga.n_agents == before + 6
    assert result.steps == 6
    elga.scale_to(before)
    assert elga.n_agents == before
    assert elga.cluster.consistent()
