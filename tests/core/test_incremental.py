"""Incremental (dynamic) algorithms — Definition 2.5 and §4.3."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, PersonalizedPageRank, WCC
from repro.graph import EdgeBatch
from tests.conftest import reference_wcc

pytestmark = pytest.mark.incremental


@pytest.fixture()
def two_islands():
    """Two components that a later batch will bridge."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=16)
    us = np.array([0, 1, 10, 11])
    vs = np.array([1, 2, 11, 12])
    elga.ingest_edges(us, vs)
    elga.run(WCC())
    return elga


def test_incremental_bridges_components(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    result = elga.run(WCC(), incremental=True)
    assert all(result.values[v] == 0 for v in (0, 1, 2, 10, 11, 12))


def test_incremental_matches_from_scratch(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([12], [1]))
    incremental = elga.run(WCC(), incremental=True)
    us, vs = elga.reference.edge_arrays()
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in incremental.values.items()} == ref


def test_incremental_fewer_iterations_than_scratch():
    """Figure 15b's point: small batches converge in few iterations."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=17)
    chain = np.arange(60)
    elga.ingest_edges(chain[:-1], chain[1:])  # a long path: slow from scratch
    scratch = elga.run(WCC())
    elga.apply_batch(EdgeBatch.insertions([0], [59]))
    incremental = elga.run(WCC(), incremental=True)
    assert incremental.steps < scratch.steps


def test_incremental_activates_only_batch_endpoints(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([11], [10]))  # intra-component
    result = elga.run(WCC(), incremental=True)
    # Nothing to propagate: quiescence within a couple of steps.
    assert result.steps <= 2


def test_new_vertices_get_fresh_labels(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([100], [101]))
    result = elga.run(WCC(), incremental=True)
    assert result.values[100] == 100.0
    assert result.values[101] == 100.0


def test_deletion_forces_full_recompute(two_islands):
    """Incremental min-label WCC is insert-only; a deletion batch must
    fall back to a from-scratch run (the paper's policy)."""
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    elga.run(WCC(), incremental=True)
    # Now delete the bridge: labels must split again.
    elga.apply_batch(EdgeBatch.deletions([2], [10]))
    result = elga.run(WCC(), incremental=True)  # silently runs full
    assert result.values[12] == 10.0
    assert result.values[2] == 0.0


def test_touched_set_accumulates_across_batches(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    elga.apply_batch(EdgeBatch.insertions([12], [50]))
    result = elga.run(WCC(), incremental=True)
    assert result.values[50] == 0.0  # both batches' effects propagated


def test_explicit_activation_overrides_default(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    result = elga.run(WCC(), incremental=True, activate=np.array([2, 10]))
    assert result.values[12] == 0.0


# -- delta strategy: converge from the previous fixpoint ----------------


def _paired_engines(seed=31):
    """Two identical engines over a ring with chords (|V| = 40)."""
    us = np.concatenate([np.arange(40), np.array([0, 5, 11])])
    vs = np.concatenate([(np.arange(40) + 1) % 40, np.array([20, 30, 4])])
    a = ElGA(nodes=2, agents_per_node=2, seed=seed)
    a.ingest_edges(us, vs)
    b = ElGA(nodes=2, agents_per_node=2, seed=seed)
    b.ingest_edges(us, vs)
    return a, b


def test_pagerank_delta_matches_scratch_within_tol():
    a, b = _paired_engines()
    pr = PageRank(max_iters=200, tol=1e-8)
    a.run(pr)
    # Inserts between existing vertices: |V| stable, so delta engages.
    batch = EdgeBatch.insertions([7, 25], [19, 2])
    a.apply_batch(batch)
    b.apply_batch(batch)
    inc = a.run(pr, incremental=True)
    full = b.run(PageRank(max_iters=200, tol=1e-8))
    assert inc.strategy == "delta"
    assert full.strategy == "scratch"
    err = max(abs(inc.values[v] - full.values[v]) for v in full.values)
    assert err < pr.tol


def test_pagerank_delta_is_deterministic():
    a, b = _paired_engines()
    pr_a = PageRank(max_iters=200, tol=1e-8)
    pr_b = PageRank(max_iters=200, tol=1e-8)
    batch = EdgeBatch.insertions([3, 14], [22, 9])
    a.run(pr_a)
    b.run(pr_b)
    a.apply_batch(batch)
    b.apply_batch(batch)
    ra = a.run(pr_a, incremental=True)
    rb = b.run(pr_b, incremental=True)
    assert ra.strategy == rb.strategy == "delta"
    assert ra.values == rb.values  # bit-identical, not just close


def test_pagerank_vertex_count_change_falls_back_to_dense():
    a, b = _paired_engines()
    pr = PageRank(max_iters=200, tol=1e-8)
    a.run(pr)
    batch = EdgeBatch.insertions([100], [101])  # |V| grows: stable-n gate
    a.apply_batch(batch)
    b.apply_batch(batch)
    inc = a.run(pr, incremental=True)
    assert inc.strategy == "dense"
    full = b.run(PageRank(max_iters=200, tol=1e-8))
    err = max(abs(inc.values[v] - full.values[v]) for v in full.values)
    assert err < pr.tol


def test_no_prior_fixpoint_runs_scratch():
    a, _ = _paired_engines()
    result = a.run(WCC(), incremental=True)
    assert result.strategy == "scratch"


def test_program_without_delta_protocol_warm_starts_dense():
    a, _ = _paired_engines()
    ppr = PersonalizedPageRank(source=0, max_iters=50)
    a.run(ppr)
    a.apply_batch(EdgeBatch.insertions([6], [17]))
    result = a.run(ppr, incremental=True)
    assert result.strategy == "dense"


def test_wcc_deletion_resolves_to_scratch_strategy(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.deletions([1], [2]))
    result = elga.run(WCC(), incremental=True)
    assert result.strategy == "scratch"


def test_wcc_insert_delta_strategy_and_exactness(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    result = elga.run(WCC(), incremental=True)
    assert result.strategy == "delta"
    fresh = ElGA(nodes=2, agents_per_node=2, seed=16)
    us, vs = elga.reference.edge_arrays()
    fresh.ingest_edges(us, vs)
    assert result.values == fresh.run(WCC()).values


def test_delta_run_uses_delta_phases_and_counts_frontier():
    from repro.cluster.cluster import sorted_agents

    a, _ = _paired_engines()
    pr = PageRank(max_iters=200, tol=1e-8)
    a.run(pr)
    a.apply_batch(EdgeBatch.insertions([3], [22]))
    result = a.run(pr, incremental=True)
    assert result.strategy == "delta"
    phases = {phase for phase, _, _ in result.round_durations}
    assert "delta_init" in phases and "delta_step" in phases
    # per_step_seconds must count the delta rounds (phase allowlist fix).
    assert len(result.per_step_seconds()) >= result.steps
    assert sum(
        agent.metrics.frontier_size for agent in sorted_agents(a.cluster.agents)
    ) > 0
