"""Incremental (dynamic) algorithms — Definition 2.5 and §4.3."""

import numpy as np
import pytest

from repro.core import ElGA, WCC
from repro.graph import EdgeBatch
from tests.conftest import reference_wcc


@pytest.fixture()
def two_islands():
    """Two components that a later batch will bridge."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=16)
    us = np.array([0, 1, 10, 11])
    vs = np.array([1, 2, 11, 12])
    elga.ingest_edges(us, vs)
    elga.run(WCC())
    return elga


def test_incremental_bridges_components(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    result = elga.run(WCC(), incremental=True)
    assert all(result.values[v] == 0 for v in (0, 1, 2, 10, 11, 12))


def test_incremental_matches_from_scratch(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([12], [1]))
    incremental = elga.run(WCC(), incremental=True)
    us, vs = elga.reference.edge_arrays()
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in incremental.values.items()} == ref


def test_incremental_fewer_iterations_than_scratch():
    """Figure 15b's point: small batches converge in few iterations."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=17)
    chain = np.arange(60)
    elga.ingest_edges(chain[:-1], chain[1:])  # a long path: slow from scratch
    scratch = elga.run(WCC())
    elga.apply_batch(EdgeBatch.insertions([0], [59]))
    incremental = elga.run(WCC(), incremental=True)
    assert incremental.steps < scratch.steps


def test_incremental_activates_only_batch_endpoints(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([11], [10]))  # intra-component
    result = elga.run(WCC(), incremental=True)
    # Nothing to propagate: quiescence within a couple of steps.
    assert result.steps <= 2


def test_new_vertices_get_fresh_labels(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([100], [101]))
    result = elga.run(WCC(), incremental=True)
    assert result.values[100] == 100.0
    assert result.values[101] == 100.0


def test_deletion_forces_full_recompute(two_islands):
    """Incremental min-label WCC is insert-only; a deletion batch must
    fall back to a from-scratch run (the paper's policy)."""
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    elga.run(WCC(), incremental=True)
    # Now delete the bridge: labels must split again.
    elga.apply_batch(EdgeBatch.deletions([2], [10]))
    result = elga.run(WCC(), incremental=True)  # silently runs full
    assert result.values[12] == 10.0
    assert result.values[2] == 0.0


def test_touched_set_accumulates_across_batches(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    elga.apply_batch(EdgeBatch.insertions([12], [50]))
    result = elga.run(WCC(), incremental=True)
    assert result.values[50] == 0.0  # both batches' effects propagated


def test_explicit_activation_overrides_default(two_islands):
    elga = two_islands
    elga.apply_batch(EdgeBatch.insertions([2], [10]))
    result = elga.run(WCC(), incremental=True, activate=np.array([2, 10]))
    assert result.values[12] == 0.0
