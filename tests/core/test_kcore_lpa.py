"""K-core decomposition and label propagation as vertex programs."""

import numpy as np
import pytest

from repro.core import ElGA
from repro.core.algorithms import KCore, LabelPropagation


def build(us, vs, seed=3, **kw):
    elga = ElGA(nodes=2, agents_per_node=2, seed=seed, **kw)
    elga.ingest_edges(np.asarray(us), np.asarray(vs))
    return elga


def kcore_members(result):
    return {v for v, x in result.values.items() if x > 0.5}


class TestKCore:
    def test_triangle_with_pendant(self):
        # Triangle 0-1-2 plus pendant 3 hanging off 0: the 2-core is the
        # triangle, and peeling 3 must not cascade into it.
        elga = build([0, 1, 2, 0], [1, 2, 0, 3])
        result = elga.run(KCore(k=2))
        assert kcore_members(result) == {0, 1, 2}

    def test_chain_peels_to_nothing(self):
        # A path has no 2-core; peeling cascades end to end.
        elga = build([0, 1, 2, 3], [1, 2, 3, 4])
        result = elga.run(KCore(k=2))
        assert kcore_members(result) == set()
        # ...but every vertex survives at k=1 (all have a neighbor).
        assert kcore_members(build([0, 1, 2, 3], [1, 2, 3, 4]).run(KCore(k=1))) == {
            0,
            1,
            2,
            3,
            4,
        }

    def test_matches_networkx_on_random_graph(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(17)
        n, m = 60, 240
        us = rng.integers(0, n, size=m)
        vs = rng.integers(0, n, size=m)
        keep = us != vs
        # Canonicalize to unique undirected edges: a reciprocal directed
        # pair would scatter support twice (once per direction) while
        # nx.Graph collapses it to one edge.
        pairs = np.unique(
            np.stack([np.minimum(us[keep], vs[keep]), np.maximum(us[keep], vs[keep])], axis=1),
            axis=0,
        )
        us, vs = pairs[:, 0], pairs[:, 1]

        elga = build(us, vs, replication_threshold=40)
        for k in (2, 3, 4):
            result = elga.run(KCore(k=k))
            g = nx.Graph()
            g.add_nodes_from(range(int(max(us.max(), vs.max())) + 1))
            g.add_edges_from(zip(us.tolist(), vs.tolist()))
            g.remove_edges_from(nx.selfloop_edges(g))
            expected = set(nx.k_core(g, k=k).nodes())
            got = kcore_members(result)
            # Isolated vertices never ingest (edge streams carry no
            # degree-0 vertices) so compare over the hosted set.
            assert got == expected & set(result.values)

    def test_deterministic_across_runs(self):
        us = [0, 1, 2, 3, 4, 0]
        vs = [1, 2, 3, 4, 0, 2]
        a = build(us, vs, seed=5).run(KCore(k=2)).values
        b = build(us, vs, seed=5).run(KCore(k=2)).values
        assert a == b


class TestLabelPropagation:
    def two_cliques(self):
        # Two K4s joined by one bridge edge — the classic two-community
        # graph LPA must not merge.
        left = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        right = [(a + 10, b + 10) for a in range(4) for b in range(a + 1, 4)]
        edges = left + right + [(3, 10)]
        us = [e[0] for e in edges]
        vs = [e[1] for e in edges]
        return us, vs

    def test_disconnected_cliques_get_distinct_labels(self):
        # No bridge: labels cannot cross components, so each K4 must
        # reach internal consensus on a label of its own.
        left = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        right = [(a + 10, b + 10) for a in range(4) for b in range(a + 1, 4)]
        edges = left + right
        elga = build([e[0] for e in edges], [e[1] for e in edges])
        result = elga.run(LabelPropagation(max_iters=25))
        by_vertex = {
            v: int(LabelPropagation.labels(np.asarray([x]))[0])
            for v, x in result.values.items()
        }
        left_labels = {by_vertex[v] for v in range(4)}
        right_labels = {by_vertex[v] for v in range(10, 14)}
        assert len(left_labels) == 1 and len(right_labels) == 1
        assert left_labels <= set(range(4))
        assert right_labels <= set(range(10, 14))

    def test_bridged_cliques_form_few_communities(self):
        # With a single bridge the lottery can let one clique's label
        # leak a hop, but the graph must not dissolve into singletons.
        us, vs = self.two_cliques()
        result = build(us, vs).run(LabelPropagation(max_iters=25))
        labels = LabelPropagation.labels(np.asarray(list(result.values.values())))
        assert 1 <= len(set(labels.tolist())) <= 3

    def test_labels_are_vertex_ids(self):
        us, vs = self.two_cliques()
        result = build(us, vs).run(LabelPropagation(max_iters=25))
        hosted = set(result.values)
        labels = LabelPropagation.labels(
            np.asarray(list(result.values.values()))
        )
        assert set(labels.tolist()) <= hosted  # labels are seed vertex ids

    def test_deterministic_across_runs(self):
        us, vs = self.two_cliques()
        a = build(us, vs, seed=7).run(LabelPropagation(max_iters=25)).values
        b = build(us, vs, seed=7).run(LabelPropagation(max_iters=25)).values
        assert a == b

    def test_rejects_ids_beyond_label_width(self):
        prog = LabelPropagation()
        with pytest.raises(ValueError):
            prog.initial_value(
                np.asarray([2**24], dtype=np.int64), {"global_n": 1}
            )
