"""Mid-run elastic scaling (Figure 17 machinery)."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from tests.conftest import reference_pagerank, reference_wcc


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(600, 5000, alpha=2.2, seed=30)


def build(graph, **kw):
    us, vs, _ = graph
    defaults = dict(nodes=2, agents_per_node=3, seed=31)
    defaults.update(kw)
    elga = ElGA(**defaults)
    elga.ingest_edges(us, vs, n_streamers=2)
    return elga


def test_scale_up_mid_pagerank_preserves_result(graph):
    us, vs, _ = graph
    elga = build(graph)
    result = elga.run(PageRank(max_iters=8, tol=1e-15), scale_plan={2: 12})
    assert elga.n_agents == 12
    ref, _ = reference_pagerank(us, vs, max_iters=8, tol=1e-15)
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-8


def test_scale_down_mid_pagerank_preserves_result(graph):
    us, vs, _ = graph
    elga = build(graph)
    result = elga.run(PageRank(max_iters=8, tol=1e-15), scale_plan={3: 2})
    assert elga.n_agents == 2
    ref, _ = reference_pagerank(us, vs, max_iters=8, tol=1e-15)
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-8


def test_scale_up_then_down_like_fig17(graph):
    """Figure 17's sequence: scale up after one iteration, finish, then
    scale back down for cost savings."""
    us, vs, _ = graph
    elga = build(graph)
    result = elga.run(PageRank(max_iters=5, tol=1e-15), scale_plan={1: 10})
    assert elga.n_agents == 10
    elga.scale_to(6)
    assert elga.n_agents == 6
    ref, _ = reference_pagerank(us, vs, max_iters=5, tol=1e-15)
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-8
    assert elga.validate_against_reference()


def test_mid_run_wcc_scaling(graph):
    us, vs, _ = graph
    elga = build(graph)
    result = elga.run(WCC(), scale_plan={1: 9})
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref


def test_round_durations_show_suspension(graph):
    elga = build(graph)
    result = elga.run(PageRank(max_iters=6, tol=1e-15), scale_plan={2: 10})
    phases = [phase for phase, _, _ in result.round_durations]
    assert "apply_only" in phases and "resume" in phases
    # Steps still count correctly despite the extra rounds.
    assert result.steps == 6


def test_later_supersteps_use_new_cluster(graph):
    """After scale-up the remaining supersteps run on more agents, so
    the straggler's share of edges (and thus step time) drops."""
    elga = build(graph, nodes=1, agents_per_node=2)
    result = elga.run(PageRank(max_iters=8, tol=1e-15), scale_plan={3: 16})
    steps = [(phase, step, dur) for phase, step, dur in result.round_durations if phase == "step"]
    before = np.mean([d for _, s, d in steps if s <= 3])
    after = np.mean([d for _, s, d in steps if s > 4])
    assert after < before
