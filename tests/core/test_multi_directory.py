"""Multi-directory deployments: the scalable directory system (§3.3)."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from tests.conftest import reference_pagerank, reference_wcc


@pytest.fixture(scope="module")
def multi_dir_engine():
    us, vs, n = powerlaw_graph(600, 5000, alpha=2.2, seed=95)
    elga = ElGA(nodes=3, agents_per_node=3, seed=96, n_directories=3)
    elga.ingest_edges(us, vs, n_streamers=3)
    return elga, us, vs


def test_agents_spread_across_directories(multi_dir_engine):
    elga, _, _ = multi_dir_engine
    homes = {a.directory_address for a in elga.cluster.agents.values()}
    assert len(homes) == 3


def test_barrier_works_through_ready_forwarding(multi_dir_engine):
    """Non-lead directories forward readiness to the lead (Figure 2's
    inter-directory rebroadcast) — a run must still converge exactly."""
    elga, us, vs = multi_dir_engine
    result = elga.run(PageRank(max_iters=20, tol=1e-12))
    ref, iters = reference_pagerank(us, vs, max_iters=20, tol=1e-12)
    assert result.steps == iters
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-8


def test_wcc_with_multiple_directories(multi_dir_engine):
    elga, us, vs = multi_dir_engine
    result = elga.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref


def test_elasticity_with_multiple_directories(multi_dir_engine):
    elga, us, vs = multi_dir_engine
    before = elga.cluster.total_resident_edges()
    elga.scale_to(12)
    assert elga.cluster.total_resident_edges() == before
    # All directories share the new membership.
    versions = {d.state.version for d in elga.cluster.directories}
    assert len(versions) == 1
    memberships = {tuple(d.state.agent_ids()) for d in elga.cluster.directories}
    assert len(memberships) == 1


def test_incremental_run_with_multiple_directories(multi_dir_engine):
    elga, us, vs = multi_dir_engine
    from repro.graph import EdgeBatch

    elga.run(WCC())
    elga.apply_batch(EdgeBatch.insertions([9000], [0]))
    result = elga.run(WCC(), incremental=True)
    assert result.values[9000] == result.values[0]
