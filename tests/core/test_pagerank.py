"""Distributed PageRank correctness (§4.3: agreement to 1e-8)."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank
from tests.conftest import reference_pagerank


def test_small_graph_matches_reference(engine, small_graph):
    us, vs, _ = small_graph
    result = engine.run(PageRank(max_iters=50, tol=1e-12))
    ref, _ = reference_pagerank(us, vs, max_iters=50, tol=1e-12)
    for v, expected in ref.items():
        assert result.values[v] == pytest.approx(expected, abs=1e-10)


def test_same_superstep_count_as_reference(engine, small_graph):
    """'We observed each system perform the same number of supersteps.'"""
    us, vs, _ = small_graph
    result = engine.run(PageRank(max_iters=100, tol=1e-9))
    _, ref_iters = reference_pagerank(us, vs, max_iters=100, tol=1e-9)
    assert result.steps == ref_iters


def test_skewed_graph_with_splits_matches(skewed_engine, skewed_graph):
    us, vs, _ = skewed_graph
    assert len(skewed_engine.cluster.lead.state.split_vertices) > 0
    result = skewed_engine.run(PageRank(max_iters=25, tol=1e-12))
    ref, _ = reference_pagerank(us, vs, max_iters=25, tol=1e-12)
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-8


def test_rank_mass_conserved(engine):
    result = engine.run(PageRank(max_iters=30, tol=1e-12))
    assert sum(result.values.values()) == pytest.approx(1.0, abs=1e-9)


def test_deterministic_across_runs(small_graph):
    us, vs, _ = small_graph

    def run_once():
        elga = ElGA(nodes=2, agents_per_node=2, seed=21)
        elga.ingest_edges(us, vs)
        result = elga.run(PageRank(max_iters=10, tol=1e-15))
        return result.values, result.sim_seconds

    a_values, a_time = run_once()
    b_values, b_time = run_once()
    assert a_values == b_values
    assert a_time == b_time  # simulated time is exactly reproducible


def test_results_independent_of_cluster_shape(small_graph):
    us, vs, _ = small_graph
    results = []
    for nodes, apn in ((1, 1), (2, 2), (3, 4)):
        elga = ElGA(nodes=nodes, agents_per_node=apn, seed=5)
        elga.ingest_edges(us, vs)
        results.append(elga.run(PageRank(max_iters=20, tol=1e-15)).values)
    for other in results[1:]:
        for v, x in results[0].items():
            assert other[v] == pytest.approx(x, abs=1e-12)


def test_persisted_and_queryable(engine):
    engine.run(PageRank(max_iters=5, tol=1e-15))
    value = engine.query(0, "pagerank")
    assert value is not None and value > 0


def test_restart_from_persisted_converges_fast(engine, small_graph):
    """The dynamic PageRank mode: restarting from converged ranks halts
    almost immediately."""
    us, vs, _ = small_graph
    first = engine.run(PageRank(max_iters=100, tol=1e-10))
    second = engine.run(PageRank(max_iters=100, tol=1e-10), incremental=True,
                        activate=np.unique(np.concatenate([us, vs])))
    assert second.steps <= 3
    for v, x in first.values.items():
        assert second.values[v] == pytest.approx(x, abs=1e-9)
