"""Personalized PageRank correctness."""

import numpy as np
import pytest

from repro.core import ElGA, PersonalizedPageRank
from repro.gen import powerlaw_graph
from repro.graph import compact_ids


def reference_ppr(us, vs, source, damping=0.85, tol=1e-12, max_iters=100):
    cu, cv, ids = compact_ids(us, vs)
    n = len(ids)
    src_idx = int(np.searchsorted(ids, source))
    out_deg = np.bincount(cu, minlength=n).astype(float)
    safe = np.where(out_deg > 0, out_deg, 1.0)
    restart = np.zeros(n)
    restart[src_idx] = 1.0
    values = restart.copy()
    for _ in range(max_iters):
        incoming = np.zeros(n)
        np.add.at(incoming, cv, (values / safe)[cu])
        new = (1 - damping) * restart + damping * incoming
        if np.abs(new - values).sum() < tol:
            values = new
            break
        values = new
    return {int(ids[i]): values[i] for i in range(n)}


@pytest.fixture(scope="module")
def loaded():
    us, vs, n = powerlaw_graph(600, 6000, alpha=2.2, seed=97)
    elga = ElGA(nodes=2, agents_per_node=3, seed=98, replication_threshold=300)
    elga.ingest_edges(us, vs, n_streamers=2)
    return elga, us, vs


def test_matches_reference(loaded):
    elga, us, vs = loaded
    source = int(us[0])
    result = elga.run(PersonalizedPageRank(source=source, max_iters=25, tol=1e-14))
    ref = reference_ppr(us, vs, source, max_iters=25, tol=1e-14)
    worst = max(abs(result.values[v] - x) for v, x in ref.items())
    assert worst < 1e-10


def test_mass_concentrates_at_source(loaded):
    elga, us, vs = loaded
    source = int(us[0])
    result = elga.run(PersonalizedPageRank(source=source, max_iters=30))
    top_vertex, _ = result.top_k(1)[0]
    assert top_vertex == source
    assert result.values[source] > 0.1


def test_distinct_sources_distinct_results(loaded):
    elga, us, vs = loaded
    a = elga.run(PersonalizedPageRank(source=int(us[0]), max_iters=10))
    b = elga.run(PersonalizedPageRank(source=int(vs[1]), max_iters=10))
    assert a.top_k(1) != b.top_k(1)


def test_parameter_validation():
    with pytest.raises(ValueError):
        PersonalizedPageRank(source=0, damping=2.0)
    with pytest.raises(ValueError):
        PersonalizedPageRank(source=0, tol=0)
