"""VertexProgram interface and RunSpec."""

import numpy as np
import pytest

from repro.core import DegreeCount, PageRank, SSSP, WCC
from repro.core.program import RunSpec, VertexProgram


def test_aggregator_ufuncs():
    assert PageRank().ufunc is np.add
    assert WCC().ufunc is np.minimum
    assert PageRank().identity == 0.0
    assert WCC().identity == np.inf


def test_direction_flags():
    assert WCC().needs_in_and_out
    assert not PageRank().needs_in_and_out
    assert not SSSP(0).needs_in_and_out


def test_async_support_flags():
    assert WCC().supports_async and SSSP(0).supports_async
    assert not PageRank().supports_async
    assert not DegreeCount().supports_async


def test_default_initially_active_is_everyone():
    prog = WCC()
    ids = np.arange(5)
    active = prog.initially_active(ids, prog.initial_value(ids, {}), {})
    assert active.all()


def test_sssp_initially_active_only_source():
    prog = SSSP(source=3)
    ids = np.arange(5)
    values = prog.initial_value(ids, {})
    active = prog.initially_active(ids, values, {})
    assert active.tolist() == [False, False, False, True, False]
    assert values[3] == 0 and np.isinf(values[0])


def test_pagerank_parameter_validation():
    with pytest.raises(ValueError):
        PageRank(damping=1.5)
    with pytest.raises(ValueError):
        PageRank(tol=0)


def test_pagerank_halt_conditions():
    pr = PageRank(tol=1e-3, max_iters=10)
    assert not pr.halt(0, {"residual": 0.0}, {})  # never at step 0
    assert pr.halt(1, {"residual": 1e-4}, {})
    assert not pr.halt(1, {"residual": 1.0}, {})
    assert pr.halt(10, {"residual": 1.0}, {})  # cap


def test_wcc_halt_on_quiescence():
    wcc = WCC()
    assert not wcc.halt(0, {"active": 0}, {})
    assert wcc.halt(1, {"active": 0}, {})
    assert not wcc.halt(5, {"active": 3}, {})


def test_pagerank_apply_formula():
    pr = PageRank(damping=0.85)
    new, active = pr.apply(
        np.array([0.5]), np.array([0.2]), np.array([True]), {"global_n": 10}
    )
    assert new[0] == pytest.approx(0.15 / 10 + 0.85 * 0.2)
    assert active.all()


def test_wcc_apply_only_reactivates_improvements():
    wcc = WCC()
    new, active = wcc.apply(
        np.array([5.0, 2.0]), np.array([3.0, 4.0]), np.array([True, True]), {}
    )
    assert new.tolist() == [3.0, 2.0]
    assert active.tolist() == [True, False]


def test_base_class_hooks_raise():
    prog = VertexProgram()
    with pytest.raises(NotImplementedError):
        prog.initial_value(np.arange(2), {})
    with pytest.raises(NotImplementedError):
        prog.scatter_values(np.arange(2.0), np.ones(2))
    with pytest.raises(NotImplementedError):
        prog.apply(np.zeros(1), np.zeros(1), np.zeros(1, bool), {})
    with pytest.raises(NotImplementedError):
        prog.halt(0, {}, {})


def test_runspec_nbytes_includes_activation():
    spec = RunSpec(run_id=1, program=WCC(), activate=np.arange(10))
    assert spec.nbytes == 64 + 80
    assert RunSpec(run_id=1, program=WCC()).nbytes == 64
