"""RunResult convenience helpers."""

import numpy as np
import pytest

from repro.core.superstep import RunResult


@pytest.fixture()
def result():
    return RunResult(
        program_name="pagerank",
        run_id=1,
        mode="sync",
        values={0: 0.5, 1: 0.1, 2: 0.9, 3: 0.1},
        steps=3,
        sim_seconds=1.0,
    )


def test_top_k_largest(result):
    assert result.top_k(2) == [(2, 0.9), (0, 0.5)]


def test_top_k_smallest(result):
    smallest = result.top_k(2, largest=False)
    assert [v for _, v in smallest] == [0.1, 0.1]


def test_top_k_handles_overflow_and_zero(result):
    assert len(result.top_k(100)) == 4
    assert result.top_k(0) == []
    assert result.top_k(-1) == []


def test_groups(result):
    grouped = result.groups()
    assert sorted(grouped[0.1]) == [1, 3]
    assert grouped[0.9] == [2]


def test_groups_empty():
    empty = RunResult("x", 1, "sync", {}, 0, 0.0)
    assert empty.groups() == {}
    assert empty.top_k(3) == []
