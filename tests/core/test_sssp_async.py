"""Asynchronous execution and SSSP (the §3.2 async model)."""

import networkx as nx
import numpy as np
import pytest

from repro.core import ElGA, PageRank, SSSP


def reference_distances(us, vs, source):
    G = nx.DiGraph()
    G.add_edges_from(zip(us.tolist(), vs.tolist()))
    return nx.single_source_shortest_path_length(G, source)


def test_sssp_matches_bfs(engine, small_graph):
    us, vs, _ = small_graph
    result = engine.run(SSSP(source=0), mode="async")
    ref = reference_distances(us, vs, 0)
    for v, d in ref.items():
        assert result.values[v] == d


def test_unreachable_vertices_stay_infinite():
    elga = ElGA(nodes=2, agents_per_node=2, seed=18)
    elga.ingest_edges(np.array([0, 5]), np.array([1, 6]))
    result = elga.run(SSSP(source=0), mode="async")
    assert result.values[1] == 1.0
    assert np.isinf(result.values[5]) and np.isinf(result.values[6])


def test_sssp_respects_direction():
    elga = ElGA(nodes=2, agents_per_node=2, seed=19)
    elga.ingest_edges(np.array([1]), np.array([0]))  # edge into the source
    result = elga.run(SSSP(source=0), mode="async")
    assert np.isinf(result.values[1])  # not reachable along out-edges


def test_sssp_sync_and_async_agree(skewed_engine, skewed_graph):
    us, vs, n = skewed_graph
    deg = np.bincount(us, minlength=n)
    source = int(np.argmax(deg))
    sync_result = skewed_engine.run(SSSP(source=source), mode="sync")
    async_result = skewed_engine.run(SSSP(source=source), mode="async")
    assert sync_result.values == async_result.values


def test_sssp_through_split_vertices(skewed_engine, skewed_graph):
    """Distances crossing split hubs rely on the async replica gossip."""
    us, vs, n = skewed_graph
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    source = int(np.argmax(deg))
    assert len(skewed_engine.cluster.lead.state.split_vertices) > 0
    result = skewed_engine.run(SSSP(source=source), mode="async")
    ref = reference_distances(us, vs, source)
    for v, d in ref.items():
        assert result.values[v] == d


def test_async_rejects_non_monotone_programs(engine):
    with pytest.raises(ValueError):
        engine.run(PageRank(), mode="async")


def test_unknown_mode_rejected(engine):
    with pytest.raises(ValueError):
        engine.run(SSSP(source=0), mode="magic")
