"""Run controller and RunResult unit behavior."""

import numpy as np
import pytest

from repro.core import PageRank, WCC
from repro.core.program import RunSpec
from repro.core.superstep import RunResult, SyncRunController
from repro.sim import SimKernel


def make_controller(program, **kw):
    kernel = SimKernel()
    spec = RunSpec(run_id=1, program=program, global_n=100)
    return SyncRunController(spec, kernel, **kw), kernel


def test_normal_progression():
    ctrl, _ = make_controller(PageRank(max_iters=10))
    payload = ctrl(0, 0, {"residual": 1.0})
    assert payload["phase"] == "step"
    assert payload["step"] == 1 and payload["round"] == 1
    payload = ctrl(1, 1, {"residual": 1.0})
    assert payload["step"] == 2


def test_halts_on_convergence():
    ctrl, _ = make_controller(PageRank(tol=1e-3, max_iters=50))
    ctrl(0, 0, {})
    payload = ctrl(1, 1, {"residual": 1e-6})
    assert payload["phase"] == "halt"
    assert ctrl.done
    assert ctrl.final_step == 1


def test_halts_on_iteration_cap():
    ctrl, _ = make_controller(PageRank(tol=0.0 + 1e-300, max_iters=2))
    ctrl(0, 0, {})
    ctrl(1, 1, {"residual": 1.0})
    payload = ctrl(2, 2, {"residual": 1.0})
    assert payload["phase"] == "halt"


def test_scale_plan_triggers_apply_only():
    suspended = []
    ctrl, _ = make_controller(
        WCC(),
        scale_plan={1: 8},
        on_suspended=lambda r, s, t, w: suspended.append((r, s, t, w)),
    )
    ctrl(0, 0, {"active": 5})
    payload = ctrl(1, 1, {"active": 5})
    assert payload["phase"] == "apply_only"
    # apply_only completion hands control to the engine.
    result = ctrl(2, 2, {"active": 3})
    assert result is None
    assert suspended == [(2, 2, 8, None)]
    resume = ctrl.resume_payload(3, 2)
    assert resume["phase"] == "resume"
    assert "spec" in resume


def test_rebalance_plan_triggers_apply_only():
    suspended = []
    ctrl, _ = make_controller(
        WCC(),
        rebalance_plan={1: {0: 2.0, 1: 0.5}},
        on_suspended=lambda r, s, t, w: suspended.append((r, s, t, w)),
    )
    ctrl(0, 0, {"active": 5})
    payload = ctrl(1, 1, {"active": 5})
    assert payload["phase"] == "apply_only"
    result = ctrl(2, 2, {"active": 3})
    assert result is None
    # No scale target, but the weight map rides through.
    assert suspended == [(2, 2, None, {0: 2.0, 1: 0.5})]


def test_resume_round_never_halts():
    ctrl, _ = make_controller(WCC(), scale_plan={1: 8}, on_suspended=lambda *a: None)
    ctrl(0, 0, {"active": 5})
    ctrl(1, 1, {"active": 5})
    ctrl(2, 2, {"active": 0})  # suspension — quiescent stats
    ctrl.resume_payload(3, 2)
    payload = ctrl(3, 2, {})  # resume completes with empty stats
    assert payload["phase"] == "step"


def test_apply_only_can_halt_directly():
    ctrl, _ = make_controller(PageRank(tol=1.0, max_iters=50), scale_plan={1: 4})
    ctrl(0, 0, {})
    ctrl(1, 1, {"residual": 10.0})
    payload = ctrl(2, 2, {"residual": 1e-9})
    assert payload["phase"] == "halt"


def test_round_durations_recorded():
    ctrl, kernel = make_controller(PageRank(max_iters=3))
    kernel.schedule(0.5, lambda: None)
    kernel.run()
    ctrl(0, 0, {})
    assert ctrl.round_durations == [("init", 0, 0.5)]


def test_apply_only_without_handler_raises():
    ctrl, _ = make_controller(WCC(), scale_plan={1: 8})
    ctrl(0, 0, {"active": 1})
    ctrl(1, 1, {"active": 1})
    with pytest.raises(RuntimeError):
        ctrl(2, 2, {"active": 1})


def test_run_result_step_helpers():
    result = RunResult(
        program_name="x",
        run_id=1,
        mode="sync",
        values={0: 1.0},
        steps=2,
        sim_seconds=1.0,
        round_durations=[("init", 0, 0.1), ("step", 1, 0.2), ("apply_only", 2, 0.05)],
    )
    assert result.per_step_seconds() == [0.1, 0.2]
    assert result.mean_step_seconds() == pytest.approx(0.15)
    empty = RunResult("x", 1, "sync", {}, 0, 0.0)
    assert empty.mean_step_seconds() == 0.0


def test_run_result_as_array_default():
    result = RunResult("x", 1, "sync", {1: 2.0}, 1, 0.0)
    arr = result.as_array(3)
    assert np.isnan(arr[0]) and arr[1] == 2.0
