"""Distributed WCC correctness."""

import numpy as np
import pytest

from repro.core import ElGA, WCC
from tests.conftest import reference_wcc


def test_small_graph_components(engine, small_graph):
    us, vs, _ = small_graph
    result = engine.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref


def test_disconnected_components():
    elga = ElGA(nodes=2, agents_per_node=2, seed=13)
    us = np.array([0, 1, 10, 11, 20])
    vs = np.array([1, 2, 11, 12, 21])
    elga.ingest_edges(us, vs)
    result = elga.run(WCC())
    labels = result.values
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[10] == labels[11] == labels[12] == 10
    assert labels[20] == labels[21] == 20


def test_directionality_ignored():
    """WCC treats edges as undirected: a directed chain is one component."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=14)
    elga.ingest_edges(np.array([2, 1]), np.array([1, 0]))  # 2->1->0
    result = elga.run(WCC())
    assert result.values[0] == result.values[1] == result.values[2] == 0


def test_skewed_graph_with_splits(skewed_engine, skewed_graph):
    us, vs, _ = skewed_graph
    result = skewed_engine.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref


def test_same_iteration_count_as_reference(engine, small_graph):
    us, vs, _ = small_graph
    result = engine.run(WCC())
    _, ref_iters = reference_wcc(us, vs)
    # The distributed run needs one extra quiescence-confirming step.
    assert abs(result.steps - ref_iters) <= 1


def test_sync_and_async_agree(skewed_graph):
    us, vs, _ = skewed_graph
    elga = ElGA(nodes=2, agents_per_node=3, seed=15, replication_threshold=300)
    elga.ingest_edges(us, vs, n_streamers=2)
    sync_result = elga.run(WCC(), mode="sync")
    async_result = elga.run(WCC(), mode="async")
    assert sync_result.values == async_result.values


def test_async_has_no_superstep_structure(engine):
    result = engine.run(WCC(), mode="async")
    assert result.steps is None
    assert result.mode == "async"
    assert result.sim_seconds > 0
