"""A-BTER-style scaler: the Figure 4 premise.

The paper's claim: A-BTER scaled graphs preserve degree and clustering
distributions well enough that system performance on a ×1 replica
matches the original.  These tests check the mechanical guarantees our
scaler provides.
"""

import numpy as np
import pytest

from repro.gen import bter_scale, degree_histogram, powerlaw_graph, stream_scaled
from repro.gen.bter import clustering_estimate
from repro.graph import EdgeBatch


@pytest.fixture(scope="module")
def seed_graph():
    return powerlaw_graph(800, 8000, alpha=2.2, seed=7)


def test_scale_factor_applies_to_vertices(seed_graph):
    us, vs, n = seed_graph
    present = len(np.unique(np.concatenate([us, vs])))
    _, _, n2 = bter_scale(us, vs, n, factor=4, seed=0)
    assert n2 == pytest.approx(4 * present, rel=0.01)


def test_edge_count_scales_roughly_linearly(seed_graph):
    us, vs, n = seed_graph
    u2, v2, _ = bter_scale(us, vs, n, factor=4, seed=0)
    assert 2.3 * len(us) < len(u2) < 5.5 * len(us)


def test_average_degree_preserved(seed_graph):
    us, vs, n = seed_graph
    present = len(np.unique(np.concatenate([us, vs])))
    avg_seed = 2 * len(us) / present
    u2, v2, n2 = bter_scale(us, vs, n, factor=5, seed=1)
    avg_scaled = 2 * len(u2) / n2
    assert avg_scaled == pytest.approx(avg_seed, rel=0.30)


def test_degree_distribution_shape_preserved(seed_graph):
    """Compare log-binned degree histograms of seed and ×1 replica."""
    us, vs, n = seed_graph
    u2, v2, n2 = bter_scale(us, vs, n, factor=1.0, seed=2)

    def log_binned(us_, vs_, n_):
        deg = np.bincount(us_, minlength=n_) + np.bincount(vs_, minlength=n_)
        deg = deg[deg > 0]
        bins = np.logspace(0, np.log10(deg.max() + 1), 12)
        hist, _ = np.histogram(deg, bins=bins)
        return hist / hist.sum()

    h_seed = log_binned(us, vs, n)
    h_scaled = log_binned(u2, v2, n2)
    # Total-variation distance (half the L1); dedup and random
    # orientation blur the low-degree bins somewhat, so the bound is a
    # shape check, not an exact-match check.
    assert 0.5 * np.abs(h_seed - h_scaled).sum() < 0.25


def test_max_degree_grows_with_scale(seed_graph):
    us, vs, n = seed_graph
    def max_deg(u_, v_, n_):
        return int((np.bincount(u_, minlength=n_) + np.bincount(v_, minlength=n_)).max())
    u2, v2, n2 = bter_scale(us, vs, n, factor=8, seed=3)
    assert max_deg(u2, v2, n2) >= 0.5 * max_deg(us, vs, n)


def test_phase1_raises_clustering(seed_graph):
    """Affinity blocks are what give BTER its clustering: rho > 0 must
    beat a pure Chung–Lu (rho = 0) replica."""
    us, vs, n = seed_graph
    with_blocks = bter_scale(us, vs, n, factor=1.0, seed=4, rho=0.5)
    without = bter_scale(us, vs, n, factor=1.0, seed=4, rho=0.0)
    cc_with = clustering_estimate(*with_blocks, samples=1500, seed=0)
    cc_without = clustering_estimate(*without, samples=1500, seed=0)
    assert cc_with > cc_without


def test_deterministic(seed_graph):
    us, vs, n = seed_graph
    a = bter_scale(us, vs, n, factor=2, seed=5)
    b = bter_scale(us, vs, n, factor=2, seed=5)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_no_self_loops_or_duplicates(seed_graph):
    us, vs, n = seed_graph
    u2, v2, _ = bter_scale(us, vs, n, factor=2, seed=6)
    assert (u2 != v2).all()
    assert len(set(zip(u2.tolist(), v2.tolist()))) == len(u2)


def test_invalid_factor(seed_graph):
    us, vs, n = seed_graph
    with pytest.raises(ValueError):
        bter_scale(us, vs, n, factor=0)


def test_stream_scaled_yields_whole_graph(seed_graph):
    us, vs, n = seed_graph
    chunks = list(stream_scaled(us, vs, n, factor=1.0, seed=7, chunk=512))
    total = EdgeBatch.concat(chunks)
    direct = bter_scale(us, vs, n, factor=1.0, seed=7)
    assert len(total) == len(direct[0])
    assert np.array_equal(total.us, direct[0])


def test_degree_histogram_helper():
    hist = degree_histogram(np.array([0, 0]), np.array([1, 2]), 3)
    # degrees: v0=2, v1=1, v2=1 -> one vertex of degree 2, two of degree 1
    assert hist.tolist() == [0, 2, 1]
