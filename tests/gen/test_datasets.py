"""Table 2 dataset registry."""

import numpy as np
import pytest

from repro.gen import DATASETS, load_dataset


def test_all_fourteen_rows_present():
    assert len(DATASETS) == 14
    expected = {
        "twitter-2010", "friendster", "uk-2007-05", "datagen-9.3-zf",
        "datagen-9.4-fb", "email-euall", "skitter", "livejournal",
        "amazon0601", "graph500-30", "gowalla", "patents",
        "pokec-x1000", "pokec-x2500",
    }
    assert set(DATASETS) == expected


def test_paper_scale_metadata_matches_table2():
    assert DATASETS["twitter-2010"].paper_m == pytest.approx(1.5e9)
    assert DATASETS["pokec-x2500"].paper_m == pytest.approx(112e9)
    assert DATASETS["gowalla"].abter_scale == 10000
    assert DATASETS["twitter-2010"].abter_scale is None
    assert DATASETS["graph500-30"].family == "rmat"


def test_downscale_caps_edges():
    for spec in DATASETS.values():
        assert spec.base_m <= 260_000
        assert spec.base_n >= 500


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_generation_smoke(name):
    data = load_dataset(name, scale=0.05, seed=1)
    assert len(data.us) > 100
    assert len(data.us) == len(data.vs)
    assert data.us.max() < data.n and data.vs.max() < data.n
    assert (data.us != data.vs).all()


def test_generation_deterministic():
    a = load_dataset("skitter", scale=0.1, seed=5)
    b = load_dataset("skitter", scale=0.1, seed=5)
    assert np.array_equal(a.us, b.us)


def test_generation_seed_sensitivity():
    a = load_dataset("skitter", scale=0.1, seed=5)
    b = load_dataset("skitter", scale=0.1, seed=6)
    assert not np.array_equal(a.us, b.us)


def test_scale_parameter_scales_size():
    small = load_dataset("livejournal", scale=0.1, seed=0)
    large = load_dataset("livejournal", scale=0.4, seed=0)
    assert len(large.us) > 2.5 * len(small.us)


def test_skew_present_in_social_graphs():
    data = load_dataset("twitter-2010", scale=0.3, seed=0)
    deg = np.bincount(data.us, minlength=data.n) + np.bincount(data.vs, minlength=data.n)
    avg = 2 * len(data.us) / data.n
    assert deg.max() > 10 * avg


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        load_dataset("no-such-graph")


def test_invalid_scale_raises():
    with pytest.raises(ValueError):
        load_dataset("skitter", scale=0)
