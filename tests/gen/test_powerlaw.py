"""Power-law (Chung–Lu/Zipf) generator: the skew Goal 1 targets."""

import numpy as np
import pytest

from repro.gen import powerlaw_graph
from repro.gen.powerlaw import zipf_weights


def test_edge_count_hits_target():
    us, vs, n = powerlaw_graph(1000, 8000, alpha=2.2, seed=0)
    assert len(us) == 8000
    assert n == 1000


def test_ids_in_range_no_self_loops_no_dups():
    us, vs, n = powerlaw_graph(500, 4000, alpha=2.1, seed=1)
    assert us.max() < n and vs.max() < n and us.min() >= 0
    assert (us != vs).all()
    assert len(set(zip(us.tolist(), vs.tolist()))) == len(us)


def test_deterministic():
    a = powerlaw_graph(300, 2000, seed=9)
    b = powerlaw_graph(300, 2000, seed=9)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_heavy_tail_present():
    us, vs, n = powerlaw_graph(2000, 20000, alpha=2.1, seed=2)
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    avg = 2 * len(us) / n
    assert deg.max() > 20 * avg  # a real hub exists


def test_lower_alpha_is_more_skewed():
    def max_deg(alpha):
        us, vs, n = powerlaw_graph(2000, 20000, alpha=alpha, seed=3)
        deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
        return deg.max()

    assert max_deg(2.05) > max_deg(2.8)


def test_id_shuffle_decorrelates_degree_from_id():
    us, vs, n = powerlaw_graph(2000, 20000, alpha=2.1, seed=4, shuffle_ids=True)
    deg = (np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)).astype(float)
    ids = np.arange(n, dtype=float)
    corr = np.corrcoef(ids, deg)[0, 1]
    assert abs(corr) < 0.1


def test_no_shuffle_puts_hubs_first():
    us, vs, n = powerlaw_graph(2000, 20000, alpha=2.1, seed=4, shuffle_ids=False)
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    assert deg[:20].mean() > 20 * deg[n // 2 :].mean()


def test_zipf_weights_normalized_and_decreasing():
    w = zipf_weights(100, 2.5)
    assert w.sum() == pytest.approx(1.0)
    assert (np.diff(w) <= 0).all()


def test_zipf_weights_validation():
    with pytest.raises(ValueError):
        zipf_weights(0, 2.0)
    with pytest.raises(ValueError):
        zipf_weights(10, 1.0)


def test_m_validation():
    with pytest.raises(ValueError):
        powerlaw_graph(10, 0)
