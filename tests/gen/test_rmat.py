"""R-MAT / Graph500 generator."""

import numpy as np
import pytest

from repro.gen import rmat_graph
from repro.gen.rmat import GRAPH500_PARAMS


def test_vertex_count_is_power_of_two():
    _, _, n = rmat_graph(7, edge_factor=4, seed=0)
    assert n == 128


def test_ids_in_range():
    us, vs, n = rmat_graph(9, edge_factor=8, seed=1)
    assert us.min() >= 0 and vs.min() >= 0
    assert us.max() < n and vs.max() < n


def test_deterministic():
    a = rmat_graph(8, seed=42)
    b = rmat_graph(8, seed=42)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_seed_changes_graph():
    a = rmat_graph(8, seed=1)
    b = rmat_graph(8, seed=2)
    assert not np.array_equal(a[0], b[0])


def test_dedup_removes_self_loops_and_duplicates():
    us, vs, _ = rmat_graph(8, edge_factor=16, seed=3, dedup=True)
    assert (us != vs).all()
    pairs = set(zip(us.tolist(), vs.tolist()))
    assert len(pairs) == len(us)


def test_no_dedup_keeps_raw_count():
    us, vs, n = rmat_graph(8, edge_factor=16, seed=3, dedup=False)
    assert len(us) == n * 16


def test_skewed_degrees():
    """R-MAT with Graph500 parameters concentrates edges: the max degree
    should far exceed the average."""
    us, vs, n = rmat_graph(11, edge_factor=16, seed=4)
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    assert deg.max() > 12 * deg[deg > 0].mean()


def test_uniform_params_not_skewed():
    us, vs, n = rmat_graph(11, edge_factor=16, seed=4, params=(0.25, 0.25, 0.25, 0.25), noise=0)
    deg = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    assert deg.max() < 4 * deg[deg > 0].mean()


def test_params_must_sum_to_one():
    with pytest.raises(ValueError):
        rmat_graph(8, params=(0.5, 0.5, 0.5, 0.5))


def test_scale_validated():
    with pytest.raises(ValueError):
        rmat_graph(0)


def test_graph500_params_exposed():
    assert sum(GRAPH500_PARAMS) == pytest.approx(1.0)
    assert GRAPH500_PARAMS[0] == 0.57
