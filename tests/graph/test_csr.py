"""CSR construction and the static reference kernels."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import build_csr, compact_ids, pagerank_csr, symmetrize, wcc_labels


def test_build_csr_basic():
    csr = build_csr(np.array([0, 0, 1, 2]), np.array([1, 2, 2, 0]))
    assert csr.n == 3
    assert csr.m == 4
    assert csr.neighbors(0).tolist() == [1, 2]
    assert csr.neighbors(1).tolist() == [2]
    assert csr.degrees().tolist() == [2, 1, 1]


def test_build_csr_row_sources_inverse():
    us = np.array([2, 0, 1, 0])
    vs = np.array([0, 1, 2, 2])
    csr = build_csr(us, vs)
    rebuilt_us = csr.row_sources()
    assert sorted(zip(rebuilt_us.tolist(), csr.indices.tolist())) == sorted(
        zip(us.tolist(), vs.tolist())
    )


def test_build_csr_validates():
    with pytest.raises(ValueError):
        build_csr(np.array([0]), np.array([1, 2]))
    with pytest.raises(ValueError):
        build_csr(np.array([-1]), np.array([0]))
    with pytest.raises(ValueError):
        build_csr(np.array([5]), np.array([0]), n=3)


def test_pagerank_matches_networkx():
    G = nx.gnm_random_graph(150, 900, seed=2, directed=True)
    us = np.array([u for u, v in G.edges()])
    vs = np.array([v for u, v in G.edges()])
    ranks, _ = pagerank_csr(us, vs, 150, tol=1e-12, max_iters=200)
    # networkx redistributes dangling mass; compare rank ordering of the
    # top vertices instead of raw values.
    nx_pr = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=200)
    ours_top = np.argsort(ranks)[::-1][:10]
    nx_top = sorted(nx_pr, key=nx_pr.get, reverse=True)[:10]
    assert len(set(ours_top.tolist()) & set(nx_top)) >= 7


def test_pagerank_sums_below_one_with_dangling():
    # Pregel semantics: dangling mass is lost, not redistributed.
    us = np.array([0, 1])
    vs = np.array([1, 2])  # vertex 2 dangles
    ranks, _ = pagerank_csr(us, vs, 3, max_iters=50)
    assert ranks.sum() <= 1.0 + 1e-9


def test_pagerank_uniform_on_cycle():
    n = 8
    us = np.arange(n)
    vs = (np.arange(n) + 1) % n
    ranks, _ = pagerank_csr(us, vs, n, tol=1e-14, max_iters=500)
    assert np.allclose(ranks, 1.0 / n, atol=1e-10)


def test_pagerank_convergence_iterations():
    us = np.arange(10)
    vs = (np.arange(10) + 1) % 10
    _, iters = pagerank_csr(us, vs, 10, tol=1e-3)
    assert iters < 20


def test_pagerank_invalid_n():
    with pytest.raises(ValueError):
        pagerank_csr(np.array([0]), np.array([0]), 0)


def test_wcc_matches_networkx():
    G = nx.gnm_random_graph(300, 500, seed=5, directed=True)
    us = np.array([u for u, v in G.edges()])
    vs = np.array([v for u, v in G.edges()])
    labels, _ = wcc_labels(us, vs, 300)
    assert len(set(labels.tolist())) == nx.number_weakly_connected_components(G)
    for comp in nx.weakly_connected_components(G):
        assert len({labels[v] for v in comp}) == 1


def test_wcc_label_is_component_minimum():
    us = np.array([5, 6])
    vs = np.array([6, 7])
    labels, _ = wcc_labels(us, vs, 8)
    assert labels[5] == labels[6] == labels[7] == 5


def test_wcc_incremental_activation():
    """With prior labels and only batch endpoints active, the result
    matches a full recompute — the Figure 15 strategy."""
    us = np.array([0, 1, 3, 4])
    vs = np.array([1, 2, 4, 5])
    full, _ = wcc_labels(us, vs, 6)
    # Add the bridging edge (2, 3); only its endpoints activate.
    us2 = np.concatenate([us, [2]])
    vs2 = np.concatenate([vs, [3]])
    incremental, iters = wcc_labels(us2, vs2, 6, init_labels=full, active=np.array([2, 3]))
    scratch, scratch_iters = wcc_labels(us2, vs2, 6)
    assert np.array_equal(incremental, scratch)
    assert iters <= scratch_iters


def test_wcc_init_labels_validated():
    with pytest.raises(ValueError):
        wcc_labels(np.array([0]), np.array([1]), 2, init_labels=np.array([0]))


def test_symmetrize_dedups():
    us, vs = symmetrize(np.array([0, 1, 0]), np.array([1, 0, 1]))
    assert sorted(zip(us.tolist(), vs.tolist())) == [(0, 1), (1, 0)]


def test_compact_ids_round_trip():
    us = np.array([10, 30, 10])
    vs = np.array([30, 99, 99])
    cu, cv, ids = compact_ids(us, vs)
    assert ids.tolist() == [10, 30, 99]
    assert np.array_equal(ids[cu], us)
    assert np.array_equal(ids[cv], vs)
