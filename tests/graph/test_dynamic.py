"""DynamicGraph storage semantics."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, EdgeBatch


def test_insert_and_query():
    g = DynamicGraph()
    assert g.insert_edge(1, 2)
    assert g.has_edge(1, 2)
    assert not g.has_edge(2, 1)  # directed
    assert g.num_edges == 1
    assert g.num_vertices == 2


def test_duplicate_insert_is_noop():
    g = DynamicGraph()
    assert g.insert_edge(1, 2)
    assert not g.insert_edge(1, 2)
    assert g.num_edges == 1


def test_remove_and_missing_remove():
    g = DynamicGraph()
    g.insert_edge(1, 2)
    assert g.remove_edge(1, 2)
    assert not g.remove_edge(1, 2)
    assert g.num_edges == 0
    assert g.num_vertices == 0  # both endpoints pruned


def test_self_loop_allowed():
    g = DynamicGraph()
    assert g.insert_edge(5, 5)
    assert g.degree(5) == 2  # in + out
    assert g.num_vertices == 1


def test_degrees():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    g.insert_edge(0, 2)
    g.insert_edge(2, 0)
    assert g.out_degree(0) == 2
    assert g.in_degree(0) == 1
    assert g.degree(0) == 3
    assert g.degree(99) == 0


def test_neighbors():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    g.insert_edge(0, 2)
    assert g.out_neighbors(0) == {1, 2}
    assert g.in_neighbors(1) == {0}
    assert g.out_neighbors(42) == set()


def test_apply_batch_counts_effective_changes():
    g = DynamicGraph()
    batch = EdgeBatch.insertions([0, 0, 1], [1, 1, 2])  # one duplicate
    assert g.apply_batch(batch) == 2
    assert g.num_edges == 2


def test_apply_batch_with_deletions_in_order():
    g = DynamicGraph()
    batch = EdgeBatch(
        actions=np.array([1, -1, 1], dtype=np.int8),
        us=np.array([0, 0, 0]),
        vs=np.array([1, 1, 1]),
    )
    assert g.apply_batch(batch) == 3
    assert g.has_edge(0, 1)


def test_edge_arrays_deterministic_and_complete():
    g = DynamicGraph()
    edges = [(3, 1), (1, 2), (3, 0), (0, 3)]
    for u, v in edges:
        g.insert_edge(u, v)
    us, vs = g.edge_arrays()
    assert len(us) == 4
    assert set(zip(us.tolist(), vs.tolist())) == set(edges)
    # Sorted order: deterministic regardless of insertion order.
    g2 = DynamicGraph()
    for u, v in reversed(edges):
        g2.insert_edge(u, v)
    us2, vs2 = g2.edge_arrays()
    assert np.array_equal(us, us2) and np.array_equal(vs, vs2)


def test_equality_and_clear():
    a, b = DynamicGraph(), DynamicGraph()
    a.insert_edge(1, 2)
    b.insert_edge(1, 2)
    assert a == b
    b.insert_edge(2, 3)
    assert a != b
    b.clear()
    assert b.num_edges == 0 and b.num_vertices == 0


def test_degree_dict_matches():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    g.insert_edge(1, 0)
    g.insert_edge(1, 2)
    assert g.degree_dict() == {0: 2, 1: 3, 2: 1}


def test_vertex_pruned_only_when_fully_isolated():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    g.insert_edge(1, 0)
    g.remove_edge(0, 1)
    assert g.num_vertices == 2  # (1, 0) still holds both
    g.remove_edge(1, 0)
    assert g.num_vertices == 0
