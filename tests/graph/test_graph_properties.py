"""Property-based tests: the turnstile stream model (Definition 2.3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, EdgeBatch

edges = st.tuples(
    st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20)
)
edge_lists = st.lists(edges, min_size=0, max_size=60)


def _insert_all(pairs):
    g = DynamicGraph()
    for u, v in pairs:
        g.insert_edge(u, v)
    return g


@given(pairs=edge_lists)
@settings(max_examples=80, deadline=None)
def test_graph_is_set_of_applied_edges(pairs):
    g = _insert_all(pairs)
    distinct = set(pairs)
    assert g.num_edges == len(distinct)
    for u, v in distinct:
        assert g.has_edge(u, v)


@given(pairs=edge_lists)
@settings(max_examples=60, deadline=None)
def test_insert_then_remove_everything_empties(pairs):
    g = _insert_all(pairs)
    for u, v in set(pairs):
        assert g.remove_edge(u, v)
    assert g.num_edges == 0
    assert g.num_vertices == 0


@given(pairs=edge_lists)
@settings(max_examples=60, deadline=None)
def test_batch_apply_equals_loop(pairs):
    if not pairs:
        return
    us = np.array([p[0] for p in pairs])
    vs = np.array([p[1] for p in pairs])
    via_batch = DynamicGraph()
    via_batch.apply_batch(EdgeBatch.insertions(us, vs))
    via_loop = _insert_all(pairs)
    assert via_batch == via_loop


@given(pairs=edge_lists)
@settings(max_examples=60, deadline=None)
def test_apply_then_inverted_is_identity(pairs):
    if not pairs:
        return
    us = np.array([p[0] for p in pairs])
    vs = np.array([p[1] for p in pairs])
    # Only apply the inverse to what actually changed: start from a
    # deduplicated batch so insert/undo is exact.
    distinct = sorted(set(pairs))
    batch = EdgeBatch.insertions([p[0] for p in distinct], [p[1] for p in distinct])
    g = DynamicGraph()
    g.apply_batch(batch)
    g.apply_batch(batch.inverted())
    assert g.num_edges == 0


@given(pairs=edge_lists)
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_twice_edges(pairs):
    g = _insert_all(pairs)
    degrees = g.degree_dict()
    assert sum(degrees.values()) == 2 * g.num_edges


@given(pairs=edge_lists)
@settings(max_examples=60, deadline=None)
def test_edge_arrays_round_trip(pairs):
    g = _insert_all(pairs)
    us, vs = g.edge_arrays()
    rebuilt = DynamicGraph()
    rebuilt.apply_batch(EdgeBatch.insertions(us, vs))
    assert rebuilt == g
