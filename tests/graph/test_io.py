"""Edge-list I/O round trips."""

import numpy as np
import pytest

from repro.graph import EdgeBatch
from repro.graph.io import (
    load_npz,
    read_edge_list,
    save_npz,
    stream_edge_list,
    write_edge_list,
)


@pytest.fixture()
def edges():
    rng = np.random.default_rng(0)
    return rng.integers(0, 100, 500), rng.integers(0, 100, 500)


def test_text_round_trip(tmp_path, edges):
    us, vs = edges
    path = str(tmp_path / "g.el")
    write_edge_list(path, us, vs, comment="test graph")
    got_us, got_vs = read_edge_list(path)
    assert np.array_equal(got_us, us)
    assert np.array_equal(got_vs, vs)


def test_text_comments_preserved_in_file(tmp_path, edges):
    us, vs = edges
    path = str(tmp_path / "g.el")
    write_edge_list(path, us, vs, comment="line one\nline two")
    with open(path) as fh:
        head = fh.read().splitlines()[:3]
    assert head[0] == "# line one"
    assert head[1] == "# line two"


def test_text_ragged_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_edge_list(str(tmp_path / "g.el"), np.arange(3), np.arange(4))


def test_read_empty_file(tmp_path):
    path = tmp_path / "empty.el"
    path.write_text("# nothing here\n")
    us, vs = read_edge_list(str(path))
    assert len(us) == 0 and len(vs) == 0


def test_read_malformed_single_column(tmp_path):
    path = tmp_path / "bad.el"
    path.write_text("42\n")
    with pytest.raises(ValueError):
        read_edge_list(str(path))


def test_npz_round_trip(tmp_path, edges):
    us, vs = edges
    path = str(tmp_path / "g.npz")
    save_npz(path, us, vs, n=100)
    got_us, got_vs, n = load_npz(path)
    assert np.array_equal(got_us, us)
    assert np.array_equal(got_vs, vs)
    assert n == 100


def test_stream_chunks_cover_file(tmp_path, edges):
    us, vs = edges
    path = str(tmp_path / "g.el")
    write_edge_list(path, us, vs)
    batches = list(stream_edge_list(path, chunk=64))
    assert all(len(b) <= 64 for b in batches)
    rejoined = EdgeBatch.concat(batches)
    assert np.array_equal(rejoined.us, us)
    assert np.array_equal(rejoined.vs, vs)


def test_stream_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("# header\n\n0 1\n# mid\n1 2\n")
    batches = list(stream_edge_list(str(path)))
    total = EdgeBatch.concat(batches)
    assert total.us.tolist() == [0, 1]


def test_stream_malformed_rejected(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0\n")
    with pytest.raises(ValueError):
        list(stream_edge_list(str(path)))


def test_stream_validates_chunk(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("0 1\n")
    with pytest.raises(ValueError):
        list(stream_edge_list(str(path), chunk=0))


def test_stream_feeds_engine(tmp_path, edges):
    """The intended use: a file streamed straight into the cluster."""
    from repro.core import ElGA

    us, vs = edges
    keep = us != vs
    path = str(tmp_path / "g.el")
    write_edge_list(path, us[keep], vs[keep])
    elga = ElGA(nodes=1, agents_per_node=2, seed=33)
    for batch in stream_edge_list(path, chunk=128):
        elga.apply_batch(batch, flush=False)
    elga.cluster.flush_sketches()
    assert elga.validate_against_reference()
