"""EdgeBatch and the §4.4 dynamic-change model."""

import numpy as np
import pytest

from repro.graph import (
    INSERT,
    REMOVE,
    DynamicGraph,
    EdgeBatch,
    delete_reinsert_batches,
    insertion_stream,
)


def test_batch_construction_and_iteration():
    batch = EdgeBatch.insertions([0, 1], [1, 2])
    assert len(batch) == 2
    assert list(batch) == [(1, 0, 1), (1, 1, 2)]
    assert (batch.actions == INSERT).all()


def test_deletions():
    batch = EdgeBatch.deletions([0], [1])
    assert (batch.actions == REMOVE).all()


def test_ragged_rejected():
    with pytest.raises(ValueError):
        EdgeBatch(np.array([1], dtype=np.int8), np.array([0, 1]), np.array([1]))


def test_concat_preserves_order():
    a = EdgeBatch.insertions([0], [1])
    b = EdgeBatch.deletions([0], [1])
    combined = EdgeBatch.concat([a, b])
    assert list(combined) == [(1, 0, 1), (-1, 0, 1)]
    assert len(EdgeBatch.concat([])) == 0


def test_split_covers_everything_contiguously():
    batch = EdgeBatch.insertions(np.arange(10), np.arange(10) + 1)
    parts = batch.split(3)
    assert sum(len(p) for p in parts) == 10
    rejoined = EdgeBatch.concat(parts)
    assert np.array_equal(rejoined.us, batch.us)
    with pytest.raises(ValueError):
        batch.split(0)


def test_inverted_undoes():
    g = DynamicGraph()
    g.insert_edge(9, 8)
    batch = EdgeBatch.insertions([0, 1], [1, 2])
    g.apply_batch(batch)
    g.apply_batch(batch.inverted())
    assert g.num_edges == 1 and g.has_edge(9, 8)


def test_touched_vertices():
    batch = EdgeBatch.insertions([3, 1], [1, 5])
    assert batch.touched_vertices.tolist() == [1, 3, 5]


def test_insertion_stream_chunks():
    us = np.arange(25)
    vs = np.arange(25) + 1
    chunks = list(insertion_stream(us, vs, chunk=10))
    assert [len(c) for c in chunks] == [10, 10, 5]
    rejoined = EdgeBatch.concat(chunks)
    assert np.array_equal(rejoined.us, us)
    with pytest.raises(ValueError):
        list(insertion_stream(us, vs, chunk=0))


def test_delete_reinsert_restores_graph():
    """§4.4: delete a random sample, add it back — the graph must be
    exactly restored."""
    rng = np.random.default_rng(0)
    us = np.arange(50)
    vs = (np.arange(50) + 7) % 50
    g = DynamicGraph()
    g.apply_batch(EdgeBatch.insertions(us, vs))
    snapshot_us, snapshot_vs = g.edge_arrays()
    for deletions, insertions in delete_reinsert_batches(us, vs, 10, rng, n_batches=3):
        assert len(deletions) == len(insertions) == 10
        g.apply_batch(deletions)
        assert g.num_edges == 40
        g.apply_batch(insertions)
        assert g.num_edges == 50
    after_us, after_vs = g.edge_arrays()
    assert np.array_equal(after_us, snapshot_us)
    assert np.array_equal(after_vs, snapshot_vs)


def test_delete_reinsert_sample_too_large():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        delete_reinsert_batches(np.arange(5), np.arange(5) + 1, 10, rng)
