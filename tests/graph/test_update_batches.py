"""Update-batch edge cases and the applied-row accounting they feed.

An agent dirties only the rows that *effectively* changed its stores
(inserted a new edge, deleted a present one) and those rows seed the
activation frontier of the next delta run — so no-op rows must neither
count as applied nor wake any vertex.
"""

import numpy as np
import pytest

from repro.cluster.cluster import sorted_agents
from repro.core import ElGA, WCC
from repro.graph import DynamicGraph, EdgeBatch


def _empty_batch() -> EdgeBatch:
    return EdgeBatch(
        np.empty(0, np.int8), np.empty(0, np.int64), np.empty(0, np.int64)
    )


# -- DynamicGraph (the mirror the agents' stores must agree with) --------


def test_empty_batch_is_noop():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    assert g.apply_batch(_empty_batch()) == 0
    assert g.num_edges == 1


def test_insert_and_delete_same_edge_in_one_batch():
    """Both rows are effective (the insert lands, then the delete undoes
    it), yet the graph ends exactly where it started."""
    g = DynamicGraph()
    g.insert_edge(9, 8)
    batch = EdgeBatch(
        actions=np.array([1, -1], dtype=np.int8),
        us=np.array([3, 3]),
        vs=np.array([4, 4]),
    )
    assert g.apply_batch(batch) == 2
    assert g.num_edges == 1 and not g.has_edge(3, 4)
    assert g.num_vertices == 2  # 3 and 4 pruned again


def test_delete_of_never_inserted_edge_is_not_applied():
    g = DynamicGraph()
    g.insert_edge(0, 1)
    assert g.apply_batch(EdgeBatch.deletions([5], [6])) == 0
    assert g.apply_batch(EdgeBatch.deletions([0], [2])) == 0  # vertex known, edge not
    assert g.num_edges == 1 and g.num_vertices == 2


def test_duplicate_insert_rows_apply_once():
    g = DynamicGraph()
    batch = EdgeBatch.insertions([7, 7, 7], [8, 8, 8])
    assert g.apply_batch(batch) == 1
    assert g.num_edges == 1


# -- agents: the accounting activation seeding relies on -----------------


@pytest.fixture()
def small_cluster():
    elga = ElGA(nodes=2, agents_per_node=2, seed=23)
    elga.ingest_edges(np.array([0, 1, 2]), np.array([1, 2, 3]))
    return elga


def _applied(elga) -> int:
    return sum(a.metrics.updates_applied for a in sorted_agents(elga.cluster.agents))


def _dirty_rows(elga) -> int:
    return sum(len(a._dirty_log) for a in sorted_agents(elga.cluster.agents))


def test_empty_batch_applies_nothing(small_cluster):
    elga = small_cluster
    applied, dirty = _applied(elga), _dirty_rows(elga)
    elga.apply_batch(_empty_batch())
    assert _applied(elga) == applied
    assert _dirty_rows(elga) == dirty


def test_noop_delete_applies_nothing(small_cluster):
    elga = small_cluster
    applied, dirty = _applied(elga), _dirty_rows(elga)
    elga.apply_batch(EdgeBatch.deletions([0], [3]))  # never inserted
    assert _applied(elga) == applied
    assert _dirty_rows(elga) == dirty
    assert elga.validate_against_reference()


def test_insert_delete_same_batch_counts_both_rows(small_cluster):
    """Each effective row lands in both the out- and in-store, so the
    insert+delete pair accounts for four applied rows — and the stores
    still mirror the reference exactly."""
    elga = small_cluster
    applied, dirty = _applied(elga), _dirty_rows(elga)
    batch = EdgeBatch(
        actions=np.array([1, -1], dtype=np.int8),
        us=np.array([0, 0]),
        vs=np.array([3, 3]),
    )
    elga.apply_batch(batch)
    assert _applied(elga) - applied == 4
    assert _dirty_rows(elga) - dirty == 4
    assert elga.validate_against_reference()


def test_duplicate_insert_does_not_seed_activation(small_cluster):
    """Re-inserting a present edge is a no-op: the next incremental run
    sees an empty frontier and quiesces immediately."""
    elga = small_cluster
    elga.run(WCC())
    elga.apply_batch(EdgeBatch.insertions([0], [1]))  # already present
    result = elga.run(WCC(), incremental=True)
    assert result.steps <= 2
    assert result.values[3] == 0.0
