"""Hash functions: determinism, vectorization, distribution quality."""

import numpy as np
import pytest

from repro.hashing import HASH_FUNCTIONS, abseil64, crc64, identity64, mult64, wang64

REAL_HASHES = [wang64, mult64, abseil64, crc64]


@pytest.mark.parametrize("fn", REAL_HASHES, ids=lambda f: f.__name__)
def test_deterministic(fn):
    x = np.arange(100, dtype=np.uint64)
    assert np.array_equal(fn(x), fn(x))


@pytest.mark.parametrize("fn", REAL_HASHES, ids=lambda f: f.__name__)
def test_scalar_matches_vector(fn):
    x = np.array([12345, 67890], dtype=np.uint64)
    vec = fn(x)
    assert fn(12345) == int(vec[0])
    assert fn(67890) == int(vec[1])


@pytest.mark.parametrize("fn", REAL_HASHES, ids=lambda f: f.__name__)
def test_returns_uint64(fn):
    out = fn(np.arange(10, dtype=np.uint64))
    assert out.dtype == np.uint64


@pytest.mark.parametrize("fn", REAL_HASHES, ids=lambda f: f.__name__)
def test_injective_on_small_range(fn):
    x = np.arange(100_000, dtype=np.uint64)
    assert len(np.unique(fn(x))) == len(x)


@pytest.mark.parametrize("fn", REAL_HASHES, ids=lambda f: f.__name__)
def test_input_not_mutated(fn):
    x = np.arange(100, dtype=np.uint64)
    fn(x)
    assert np.array_equal(x, np.arange(100, dtype=np.uint64))


def test_wang_avalanche_on_sequential_keys():
    """Sequential vertex ids must land uniformly across buckets — the
    quality property Figure 5 selects for."""
    x = np.arange(100_000, dtype=np.uint64)
    buckets = wang64(x) % np.uint64(64)
    counts = np.bincount(buckets.astype(np.int64), minlength=64)
    assert counts.max() / counts.mean() < 1.1


def test_wang_high_bits_mix():
    x = np.arange(100_000, dtype=np.uint64)
    top = (wang64(x) >> np.uint64(56)).astype(np.int64)
    counts = np.bincount(top, minlength=256)
    assert counts.max() / counts.mean() < 1.3


def test_mult_low_bits_are_weak():
    """Mult's low bits barely mix for sequential keys — the reason it
    trails Wang in Figure 5."""
    x = np.arange(4096, dtype=np.uint64)
    low = (mult64(x) & np.uint64(1)).astype(np.int64)
    # Perfectly alternating: sequential odd-multiplier products flip the
    # low bit every step, carrying the input's pattern straight through.
    assert np.array_equal(low[: 10], (x[:10] & np.uint64(1)).astype(np.int64))


def test_abseil_salt_changes_output():
    x = np.arange(100, dtype=np.uint64)
    assert not np.array_equal(abseil64(x, salt=1), abseil64(x, salt=2))


def test_crc64_known_zero():
    # CRC of the zero word is zero: a structural weakness real hash
    # functions don't have.
    assert crc64(0) == 0


def test_identity_is_identity():
    x = np.arange(10, dtype=np.uint64)
    assert np.array_equal(identity64(x), x)


def test_registry_contains_paper_functions():
    assert {"wang", "mult", "abseil", "crc64"} <= set(HASH_FUNCTIONS)
