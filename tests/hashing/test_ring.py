"""Consistent-hash ring behavior."""

import numpy as np
import pytest

from repro.hashing import ConsistentHashRing, mult64, wang64


def test_lookup_returns_members():
    ring = ConsistentHashRing([3, 7, 11], virtual_factor=50)
    owners = ring.lookup(np.arange(1000, dtype=np.uint64))
    assert set(np.unique(owners)) <= {3, 7, 11}


def test_scalar_lookup():
    ring = ConsistentHashRing([0, 1])
    assert ring.lookup(12345) in {0, 1}


def test_empty_ring_raises():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.lookup(1)


def test_readd_is_idempotent():
    """Re-adding a member replaces its virtual positions, never
    duplicates them (regression: planner re-weighting relies on it)."""
    ring = ConsistentHashRing([1, 2], virtual_factor=50)
    before_positions, _ = ring.position_vector()
    ring.add(1)  # same weight: a no-op on the position vector
    after_positions, _ = ring.position_vector()
    assert np.array_equal(before_positions, after_positions)
    assert len(ring) == 2


def test_readd_with_new_weight_replaces_positions():
    ring = ConsistentHashRing([1, 2], virtual_factor=50)
    ring.add(1, weight=2.0)
    assert ring.weight_of(1) == 2.0
    positions, owners = ring.position_vector()
    # Total positions = sum of per-member counts, not old + new.
    assert len(positions) == 100 + 50
    assert int((owners == 1).sum()) == 100
    # Positions are unique — no duplicated virtual agents.
    assert len(np.unique(positions)) == len(positions)
    # Re-weighting back restores the original ring exactly.
    fresh = ConsistentHashRing([1, 2], virtual_factor=50)
    ring.add(1, weight=1.0)
    a_pos, a_own = ring.position_vector()
    b_pos, b_own = fresh.position_vector()
    assert np.array_equal(a_pos, b_pos) and np.array_equal(a_own, b_own)


def test_duplicate_member_in_constructor_rejected():
    with pytest.raises(ValueError):
        ConsistentHashRing([1, 1])


def test_negative_member_rejected():
    with pytest.raises(ValueError):
        ConsistentHashRing([-1])


def test_remove_missing_raises():
    ring = ConsistentHashRing([1])
    with pytest.raises(KeyError):
        ring.remove(2)


def test_membership_protocol():
    ring = ConsistentHashRing([5, 2])
    assert len(ring) == 2
    assert 5 in ring and 3 not in ring
    assert ring.members() == [2, 5]


def test_load_balance_with_virtual_nodes():
    """100 virtual agents keeps arc shares near uniform (Figure 6)."""
    ring = ConsistentHashRing(range(16), virtual_factor=100)
    keys = np.arange(200_000, dtype=np.uint64)
    counts = np.bincount(ring.lookup(keys), minlength=16)
    assert counts.max() / counts.mean() < 1.35


def test_more_virtual_nodes_better_balance():
    keys = np.arange(100_000, dtype=np.uint64)

    def imbalance(vf):
        ring = ConsistentHashRing(range(32), virtual_factor=vf)
        counts = np.bincount(ring.lookup(keys), minlength=32)
        return counts.max() / counts.mean()

    assert imbalance(100) < imbalance(1)


def test_removal_only_moves_departed_keys():
    ring = ConsistentHashRing(range(8), virtual_factor=64)
    keys = np.arange(20_000, dtype=np.uint64)
    before = ring.lookup(keys)
    ring.remove(3)
    after = ring.lookup(keys)
    moved = before != after
    assert np.all(before[moved] == 3)


def test_addition_only_claims_keys_for_new_member():
    ring = ConsistentHashRing(range(8), virtual_factor=64)
    keys = np.arange(20_000, dtype=np.uint64)
    before = ring.lookup(keys)
    ring.add(100)
    after = ring.lookup(keys)
    moved = before != after
    assert np.all(after[moved] == 100)
    # Expected movement ≈ 1/9 of keys.
    assert 0.02 < moved.mean() < 0.30


def test_lookup_matches_bruteforce():
    """The binary search must agree with the definitional next-highest
    position scan."""
    ring = ConsistentHashRing([4, 9, 17], virtual_factor=10)
    positions, owners = ring.position_vector()
    keys = np.arange(500, dtype=np.uint64)
    hashes = np.asarray(wang64(keys))
    got = ring.lookup_hash(hashes)
    for h, owner in zip(hashes, got):
        idx = np.searchsorted(positions, h, side="left")
        expect = owners[idx % len(positions)] if idx < len(positions) else owners[0]
        assert owner == expect


def test_successors_distinct_and_ordered():
    ring = ConsistentHashRing(range(10), virtual_factor=30)
    succ = ring.successors(42, 4)
    assert len(succ) == len(set(succ)) == 4
    assert succ[0] == ring.lookup(42)


def test_successors_capped_at_member_count():
    ring = ConsistentHashRing([1, 2, 3])
    assert sorted(ring.successors(7, 10)) == [1, 2, 3]


def test_arc_fractions_sum_to_one():
    ring = ConsistentHashRing(range(5), virtual_factor=40)
    fracs = ring.arc_fractions()
    assert sum(fracs.values()) == pytest.approx(1.0)
    assert set(fracs) == set(range(5))


def test_ring_is_deterministic_across_participants():
    """All participants build identical rings from the same member list
    — placement must be a pure function of broadcast state."""
    a = ConsistentHashRing([1, 5, 9], virtual_factor=100, seed=7)
    b = ConsistentHashRing([9, 1, 5], virtual_factor=100, seed=7)  # any order
    keys = np.arange(5000, dtype=np.uint64)
    assert np.array_equal(a.lookup(keys), b.lookup(keys))


def test_hash_function_parameter_respected():
    a = ConsistentHashRing(range(4), hash_fn=wang64)
    b = ConsistentHashRing(range(4), hash_fn=mult64)
    keys = np.arange(2000, dtype=np.uint64)
    assert not np.array_equal(a.lookup(keys), b.lookup(keys))
