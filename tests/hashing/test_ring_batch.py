"""Batched successor walks must match the scalar walk bit-for-bit."""

import numpy as np
import pytest

from repro.hashing import ConsistentHashRing


def build(n_members=7, virtual_factor=16, seed=3):
    return ConsistentHashRing(
        list(range(n_members)), virtual_factor=virtual_factor, seed=seed
    )


def test_batch_matches_scalar_walk():
    ring = build()
    rng = np.random.default_rng(0)
    hashes = rng.integers(0, 2**63, size=500, dtype=np.int64).astype(np.uint64)
    ks = rng.integers(1, 6, size=500, dtype=np.int64)
    batch = ring.successors_hash_batch(hashes, ks)
    for i in range(len(hashes)):
        scalar = ring.successors_hash(int(hashes[i]), int(ks[i]))
        row = batch[i]
        assert list(row[: len(scalar)]) == scalar
        assert (row[len(scalar):] == -1).all()


def test_batch_wraparound_start():
    """A hash at the very top of the space wraps to slot 0's walk."""
    ring = build()
    top = np.array([2**64 - 1], dtype=np.uint64)
    ks = np.array([3], dtype=np.int64)
    batch = ring.successors_hash_batch(top, ks)
    assert list(batch[0][:3]) == ring.successors_hash(2**64 - 1, 3)


def test_batch_k_capped_at_member_count():
    ring = build(n_members=3)
    hashes = np.array([12345, 999], dtype=np.uint64)
    batch = ring.successors_hash_batch(hashes, np.array([10, 2], dtype=np.int64))
    # First row: all 3 members, no repeats; padding beyond.
    assert sorted(int(a) for a in batch[0][:3]) == [0, 1, 2]
    assert (batch[0][3:] == -1).all() if batch.shape[1] > 3 else True
    assert (batch[1][2:] == -1).all()


def test_batch_duplicate_hashes_share_walk():
    ring = build()
    hashes = np.array([42, 42, 42], dtype=np.uint64)
    ks = np.array([1, 2, 3], dtype=np.int64)
    batch = ring.successors_hash_batch(hashes, ks)
    walk = ring.successors_hash(42, 3)
    assert list(batch[2][:3]) == walk
    assert list(batch[1][:2]) == walk[:2]
    assert int(batch[0][0]) == walk[0]
    assert (batch[0][1:] == -1).all()


def test_batch_rejects_nonpositive_k():
    ring = build()
    with pytest.raises(ValueError):
        ring.successors_hash_batch(
            np.array([1], dtype=np.uint64), np.array([0], dtype=np.int64)
        )


def test_batch_empty_ring_raises():
    ring = ConsistentHashRing([])
    with pytest.raises(LookupError):
        ring.successors_hash_batch(
            np.array([1], dtype=np.uint64), np.array([1], dtype=np.int64)
        )


def test_batch_empty_input():
    ring = build()
    out = ring.successors_hash_batch(
        np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    )
    assert out.shape[0] == 0
