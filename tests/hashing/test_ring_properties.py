"""Property-based tests: consistent hashing's defining invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing

members_strategy = st.sets(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=12)
keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**63), min_size=1, max_size=64
)


@given(members=members_strategy, keys=keys_strategy)
@settings(max_examples=60, deadline=None)
def test_lookup_total_and_member_valued(members, keys):
    ring = ConsistentHashRing(members, virtual_factor=8)
    owners = ring.lookup(np.array(keys, dtype=np.uint64))
    assert set(int(o) for o in owners) <= members


@given(members=members_strategy, keys=keys_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_monotone_removal(members, keys, data):
    """Removing one member only re-homes keys that member owned."""
    ring = ConsistentHashRing(members, virtual_factor=8)
    keys_arr = np.array(keys, dtype=np.uint64)
    before = ring.lookup(keys_arr)
    victim = data.draw(st.sampled_from(sorted(members)))
    ring.remove(victim)
    after = ring.lookup(keys_arr)
    moved = before != after
    assert np.all(before[moved] == victim)


@given(members=members_strategy, keys=keys_strategy, new=st.integers(min_value=20_000, max_value=30_000))
@settings(max_examples=60, deadline=None)
def test_monotone_addition(members, keys, new):
    """Adding one member only claims keys for the new member."""
    ring = ConsistentHashRing(members, virtual_factor=8)
    keys_arr = np.array(keys, dtype=np.uint64)
    before = ring.lookup(keys_arr)
    ring.add(new)
    after = ring.lookup(keys_arr)
    moved = before != after
    assert np.all(after[moved] == new)


@given(members=members_strategy, keys=keys_strategy)
@settings(max_examples=40, deadline=None)
def test_add_then_remove_is_identity(members, keys):
    ring = ConsistentHashRing(members, virtual_factor=8)
    keys_arr = np.array(keys, dtype=np.uint64)
    before = ring.lookup(keys_arr)
    ring.add(99_999)
    ring.remove(99_999)
    assert np.array_equal(ring.lookup(keys_arr), before)


@given(members=members_strategy, key=st.integers(min_value=0, max_value=2**63), k=st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_successors_prefix_property(members, key, k):
    """successors(key, k) is a prefix of successors(key, k+1): growing a
    vertex's replication factor never reshuffles existing replicas."""
    ring = ConsistentHashRing(members, virtual_factor=8)
    small = ring.successors(key, k)
    bigger = ring.successors(key, k + 1)
    assert bigger[: len(small)] == small
