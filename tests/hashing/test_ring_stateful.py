"""Stateful property test: a ring under arbitrary churn sequences.

Models the invariants a long-lived elastic cluster depends on: the ring
always agrees with a brute-force model of its membership, and every
single membership change moves only the keys it must.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing

PROBE_KEYS = np.arange(0, 4000, 7, dtype=np.uint64)


class RingChurn(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = ConsistentHashRing(virtual_factor=8)
        self.members = set()
        self.last_owners = None

    @rule(member=st.integers(min_value=0, max_value=200))
    def add_member(self, member):
        if member in self.members:
            return
        before = self.ring.lookup(PROBE_KEYS) if self.members else None
        self.ring.add(member)
        self.members.add(member)
        if before is not None:
            after = self.ring.lookup(PROBE_KEYS)
            moved = before != after
            # Only the new member claims keys.
            assert np.all(after[moved] == member)

    @precondition(lambda self: len(self.members) > 1)
    @rule(data=st.data())
    def remove_member(self, data):
        victim = data.draw(st.sampled_from(sorted(self.members)))
        before = self.ring.lookup(PROBE_KEYS)
        self.ring.remove(victim)
        self.members.discard(victim)
        after = self.ring.lookup(PROBE_KEYS)
        moved = before != after
        # Only the departed member's keys move.
        assert np.all(before[moved] == victim)

    @invariant()
    def owners_are_members(self):
        if not self.members:
            return
        owners = self.ring.lookup(PROBE_KEYS)
        assert set(int(o) for o in np.unique(owners)) <= self.members

    @invariant()
    def matches_fresh_ring(self):
        """A churned ring equals a fresh ring of the same membership —
        history independence, which is what lets every participant
        rebuild placement from a directory broadcast alone."""
        if not self.members:
            return
        fresh = ConsistentHashRing(self.members, virtual_factor=8)
        assert np.array_equal(self.ring.lookup(PROBE_KEYS), fresh.lookup(PROBE_KEYS))


TestRingChurn = RingChurn.TestCase
TestRingChurn.settings = settings(max_examples=25, stateful_step_count=20, deadline=None)
