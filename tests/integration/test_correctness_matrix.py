"""Cross-system agreement — the paper's correctness methodology.

"All results were checked for correctness among the baselines and
ElGA, and, when applicable, against ground truth ... We ensure our
implementation's correctness by comparing against the baselines and
ensured floating point values were correct up to 1e-8." (§4, §4.3)
"""

import numpy as np
import pytest

from repro.baselines import Blogel, GraphX, Stinger, gapbs_wcc
from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph, rmat_graph
from repro.graph import compact_ids


@pytest.fixture(scope="module", params=["powerlaw", "rmat"])
def graph(request):
    if request.param == "powerlaw":
        return powerlaw_graph(900, 9000, alpha=2.15, seed=50)
    us, vs, n = rmat_graph(10, edge_factor=8, seed=50)
    return us, vs, n


@pytest.fixture(scope="module")
def elga_results(graph):
    us, vs, _ = graph
    elga = ElGA(nodes=2, agents_per_node=3, seed=51, replication_threshold=400)
    elga.ingest_edges(us, vs, n_streamers=2)
    pr = elga.run(PageRank(tol=1e-10, max_iters=40))
    wcc = elga.run(WCC())
    return pr, wcc


def test_pagerank_agrees_across_all_systems(graph, elga_results):
    us, vs, _ = graph
    elga_pr, _ = elga_results
    blogel = Blogel(nodes=4, ranks_per_node=4)
    blogel.load(us, vs)
    blogel_pr = blogel.pagerank(tol=1e-10, max_iters=40).value_map()
    graphx = GraphX(nodes=4)
    graphx.load(us, vs)
    graphx_pr = graphx.pagerank(tol=1e-10, max_iters=40).value_map()
    for v, x in blogel_pr.items():
        assert abs(elga_pr.values[v] - x) < 1e-8
        assert abs(graphx_pr[v] - x) < 1e-8


def test_wcc_agrees_across_all_systems(graph, elga_results):
    us, vs, n = graph
    _, elga_wcc = elga_results
    blogel = Blogel(nodes=4, ranks_per_node=4)
    blogel.load(us, vs)
    blogel_wcc = blogel.wcc().value_map()
    graphx = GraphX(nodes=4)
    graphx.load(us, vs)
    graphx_wcc = graphx.wcc().value_map()
    stinger = Stinger()
    stinger.load(us, vs)
    stinger_map = stinger.label_map()
    cu, cv, ids = compact_ids(us, vs)
    gap_labels, _ = gapbs_wcc(cu, cv, len(ids))
    for v, x in blogel_wcc.items():
        assert elga_wcc.values[v] == x
        assert graphx_wcc[v] == x
        assert stinger_map[v] == x
    # GAPbs labels: check the component partition matches.
    gap_map = {int(ids[i]): int(ids[gap_labels[i]]) for i in range(len(ids))}
    assert gap_map == blogel_wcc


def test_superstep_counts_identical(graph, elga_results):
    """'We observed each system perform the same number of supersteps.'"""
    us, vs, _ = graph
    elga_pr, _ = elga_results
    blogel = Blogel(nodes=4, ranks_per_node=4)
    blogel.load(us, vs)
    graphx = GraphX(nodes=4)
    graphx.load(us, vs)
    assert (
        elga_pr.steps
        == blogel.pagerank(tol=1e-10, max_iters=40).iterations
        == graphx.pagerank(tol=1e-10, max_iters=40).iterations
    )
