"""The §4.4 dynamic-change methodology, end to end on the cluster.

"We model their dynamic change by first deleting a random sample of
edges and second adding the sample back in, as a batch" — applied to a
running deployment, with results validated after every step.
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import load_dataset
from repro.graph import delete_reinsert_batches
from tests.conftest import reference_pagerank, reference_wcc


@pytest.mark.slow
def test_delete_reinsert_cycle_on_cluster():
    data = load_dataset("skitter", scale=0.08, seed=100)
    us, vs = data.us, data.vs
    elga = ElGA(nodes=2, agents_per_node=3, seed=101)
    elga.ingest_edges(us, vs, n_streamers=2)
    baseline_pr = elga.run(PageRank(max_iters=8, tol=1e-15))
    rng = np.random.default_rng(102)

    for deletions, insertions in delete_reinsert_batches(us, vs, 200, rng, n_batches=2):
        elga.apply_batch(deletions)
        assert elga.validate_against_reference()
        # The graph shrank; a run on the reduced graph is correct.
        mid = elga.run(WCC())
        mid_us, mid_vs = elga.reference.edge_arrays()
        ref_mid, _ = reference_wcc(mid_us, mid_vs)
        assert {v: int(x) for v, x in mid.values.items()} == ref_mid

        elga.apply_batch(insertions)
        assert elga.validate_against_reference()

    # After every delete/re-insert cycle the graph — and therefore the
    # computation — is exactly restored.
    final_pr = elga.run(PageRank(max_iters=8, tol=1e-15))
    assert set(final_pr.values) == set(baseline_pr.values)
    worst = max(abs(final_pr.values[v] - x) for v, x in baseline_pr.values.items())
    assert worst < 1e-12


def test_sketch_restored_after_delete_reinsert():
    """Turnstile sketch maintenance: deletions decrement, so a full
    cycle leaves the global degree sketch exactly where it started."""
    data = load_dataset("amazon0601", scale=0.05, seed=103)
    elga = ElGA(nodes=2, agents_per_node=2, seed=104)
    elga.ingest_edges(data.us, data.vs, n_streamers=2)
    before = elga.cluster.lead.state.sketch.copy()
    rng = np.random.default_rng(105)
    for deletions, insertions in delete_reinsert_batches(
        data.us, data.vs, 100, rng, n_batches=1
    ):
        elga.apply_batch(deletions)
        elga.apply_batch(insertions)
    after = elga.cluster.lead.state.sketch
    assert after == before
