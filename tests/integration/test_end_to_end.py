"""Full-lifecycle integration: the paper's whole story in one test.

Stream a skewed graph in, run static algorithms, apply dynamic batches
with incremental maintenance, serve queries throughout, scale the
cluster up and down (including mid-run), and verify every step against
the single-process reference.
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, SSSP, WCC
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch, delete_reinsert_batches
from tests.conftest import reference_pagerank, reference_wcc


@pytest.mark.slow
def test_full_lifecycle():
    us, vs, n = powerlaw_graph(1200, 12000, alpha=2.1, seed=60)
    elga = ElGA(nodes=2, agents_per_node=4, seed=61, replication_threshold=350)

    # 1. Streaming ingest through multiple streamers.
    report = elga.ingest_edges(us, vs, n_streamers=4)
    assert report["edges_per_second"] > 0
    assert elga.validate_against_reference()
    assert len(elga.cluster.lead.state.split_vertices) > 0

    # 2. Static algorithms agree with the reference.
    pr = elga.run(PageRank(tol=1e-10, max_iters=30))
    ref_pr, _ = reference_pagerank(us, vs, tol=1e-10, max_iters=30)
    assert max(abs(pr.values[v] - x) for v, x in ref_pr.items()) < 1e-8

    wcc = elga.run(WCC())
    ref_wcc, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in wcc.values.items()} == ref_wcc

    # 3. Dynamic batches: §4.4's delete/re-insert model, maintained
    # incrementally where the algorithm allows.
    rng = np.random.default_rng(62)
    for deletions, insertions in delete_reinsert_batches(us, vs, 40, rng, n_batches=2):
        elga.apply_batch(deletions)
        elga.apply_batch(insertions)
        result = elga.run(WCC(), incremental=True)  # falls back: deletions seen
        cur_us, cur_vs = elga.reference.edge_arrays()
        ref, _ = reference_wcc(cur_us, cur_vs)
        assert {v: int(x) for v, x in result.values.items()} == ref

    # 4. Pure-insertion incremental maintenance.
    fresh = EdgeBatch.insertions([2_000, 2_001], [2_001, 0])
    elga.apply_batch(fresh)
    inc = elga.run(WCC(), incremental=True)
    assert inc.values[2_000] == inc.values[0]
    assert inc.steps <= 6

    # 5. Queries reflect the latest output.
    assert elga.query(2_000, "wcc") == inc.values[2_000]

    # 6. Elasticity: scale up mid-run, verify, scale down, verify.
    pr2 = elga.run(PageRank(tol=1e-12, max_iters=10), scale_plan={2: 14})
    cur_us, cur_vs = elga.reference.edge_arrays()
    ref_pr2, _ = reference_pagerank(cur_us, cur_vs, tol=1e-12, max_iters=10)
    assert max(abs(pr2.values[v] - x) for v, x in ref_pr2.items()) < 1e-8
    assert elga.n_agents == 14

    elga.scale_to(4)
    assert elga.validate_against_reference()
    sssp = elga.run(SSSP(source=int(us[0])), mode="async")
    assert sssp.values[int(us[0])] == 0.0

    # 7. Nothing was silently lost anywhere.
    assert elga.cluster.consistent()


def test_dynamic_vs_static_speedup_shape():
    """Figure 15's qualitative claim at test scale: incremental batches
    are orders of magnitude cheaper than a snapshot recompute."""
    from repro.baselines import GraphX

    us, vs, n = powerlaw_graph(800, 8000, alpha=2.2, seed=63)
    elga = ElGA(nodes=2, agents_per_node=3, seed=64)
    elga.ingest_edges(us, vs, n_streamers=2)
    elga.run(WCC())

    batch = EdgeBatch.insertions([int(us[5])], [int(vs[9])])
    elga.apply_batch(batch)
    incremental = elga.run(WCC(), incremental=True)

    gx = GraphX(nodes=64)
    gx.load(np.concatenate([us, batch.us]), np.concatenate([vs, batch.vs]))
    recompute = gx.wcc_incremental({}, batch.touched_vertices)

    speedup = recompute.job_seconds / incremental.sim_seconds
    assert speedup > 50  # the paper reports 83×–1962×
