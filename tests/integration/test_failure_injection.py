"""Failure/edge-condition injection: the robustness §3 promises.

ElGA "is flexible with receiving messages out-of-order and/or destined
for the wrong node.  It buffers such messages appropriately and forwards
them to the best known destination to achieve eventual consistency."
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph
from repro.graph import EdgeBatch
from repro.net.message import Message, PacketType
from tests.conftest import reference_wcc


def test_future_round_messages_are_buffered_and_replayed():
    """Inject a data message tagged for a future round directly; the
    agent must hold it and apply it when the round arrives."""
    elga = ElGA(nodes=1, agents_per_node=2, seed=70)
    elga.ingest_edges(np.array([0, 1]), np.array([1, 0]))
    agent = elga.cluster.agents[0]
    from repro.core.program import RunSpec

    spec = RunSpec(run_id=5, program=PageRank(max_iters=3), global_n=2)
    agent._on_run_start(spec)
    hosted = int(agent.run.table.ids[0]) if len(agent.run.table) else 0
    future = {
        "step": 2,
        "round": 2,
        "dst": np.array([hosted]),
        "val": np.array([0.5]),
    }
    agent._on_vertex_msg(future, src=agent.address)
    assert agent.run.future_buffer  # stored, not applied
    agent.finalize_run(persist=False)


def test_duplicate_directory_update_is_idempotent():
    elga = ElGA(nodes=2, agents_per_node=2, seed=71)
    elga.ingest_edges(np.arange(20), (np.arange(20) + 1) % 20)
    agent = elga.cluster.agents[0]
    state = agent.dstate
    edges_before = elga.cluster.total_resident_edges()
    agent._on_directory_update(state)  # same version again
    elga.cluster.settle()
    assert elga.cluster.total_resident_edges() == edges_before


def test_agent_leave_during_idle_period_loses_nothing():
    us, vs, n = powerlaw_graph(400, 3000, alpha=2.2, seed=72)
    elga = ElGA(nodes=2, agents_per_node=3, seed=73)
    elga.ingest_edges(us, vs, n_streamers=2)
    elga.run(WCC())
    # Remove the agent holding the most edges — worst case.
    loads = elga.cluster.edge_loads()
    victim = max(loads, key=loads.get)
    elga.cluster.remove_agent(victim)
    assert elga.validate_against_reference()
    # Results still collectible and correct after the churn.
    result = elga.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref


def test_rapid_membership_churn():
    us, vs, n = powerlaw_graph(300, 2000, alpha=2.3, seed=74)
    elga = ElGA(nodes=2, agents_per_node=2, seed=75)
    elga.ingest_edges(us, vs)
    total = elga.cluster.total_resident_edges()
    # Join and leave repeatedly without waiting in between.
    for _ in range(3):
        elga.cluster.add_agent(settle=False)
    victims = sorted(elga.cluster.agents)[:2]
    for victim in victims:
        elga.cluster.remove_agent(victim, settle=False)
    elga.cluster.settle()
    assert elga.cluster.total_resident_edges() == total
    assert elga.cluster.consistent()
    assert elga.validate_against_reference()


def test_ingest_concurrent_with_queries():
    """Goal 4: maintenance supports concurrent client queries."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=76)
    elga.ingest_edges(np.arange(50), (np.arange(50) + 1) % 50)
    elga.run(WCC())
    client = elga.cluster.new_client()
    answers = []
    # Interleave queries with a streaming batch (no settle in between).
    streamer = elga.cluster.new_streamer()
    streamer.stream_batch(EdgeBatch.insertions([100, 101], [101, 102]))
    for v in (0, 1, 2):
        client.query(v, "wcc", answers.append)
    elga.cluster.settle()
    assert answers == [0.0, 0.0, 0.0]
    assert streamer.edges_acked == 4


def test_unexpected_packet_type_raises():
    elga = ElGA(nodes=1, agents_per_node=1, seed=77)
    agent = elga.cluster.agents[0]
    bogus = Message(ptype=PacketType.READY_REBROADCAST, payload={})
    bogus.src = agent.address
    bogus.dst = agent.address
    with pytest.raises(ValueError):
        agent.handle_message(bogus)


def test_sketch_drift_recovery():
    """Even if the broadcast sketch lags behind true degrees (flushes
    pending), placement stays consistent and results correct."""
    us, vs, n = powerlaw_graph(400, 4000, alpha=2.1, seed=78)
    elga = ElGA(nodes=2, agents_per_node=3, seed=79, replication_threshold=200)
    # Ingest WITHOUT flushing the sketch.
    elga.apply_batch(EdgeBatch.insertions(us, vs), n_streamers=2, flush=False)
    result = elga.run(WCC())
    ref, _ = reference_wcc(us, vs)
    assert {v: int(x) for v, x in result.values.items()} == ref
    # Flush now: hubs split late but correctly.
    elga.cluster.flush_sketches()
    result2 = elga.run(WCC())
    assert {v: int(x) for v, x in result2.values.items()} == ref
