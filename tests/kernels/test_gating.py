"""Dispatch gating: opt-in, graceful fallback, reversible."""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import reference

pytestmark = pytest.mark.kernels


@pytest.fixture(autouse=True)
def _restore_dispatch():
    before = kernels.enabled()
    yield
    kernels.set_enabled(before)


def test_disabled_backend_is_numpy():
    kernels.set_enabled(False)
    assert kernels.backend() == "numpy"
    assert not kernels.enabled()


def test_enable_reports_effective_state():
    effective = kernels.set_enabled(True)
    # Enabling only sticks when the C backend actually built; either
    # way the report matches reality.
    assert effective == (kernels.available() and kernels.enabled())
    assert kernels.backend() == ("c" if effective else "numpy")


def test_dispatcher_results_identical_across_backends():
    rng = np.random.default_rng(3)
    dst = rng.integers(0, 200, size=max(kernels.MIN_PAIRS * 4, 1024)).astype(np.int64)
    val = rng.standard_normal(len(dst))

    kernels.set_enabled(False)
    off = kernels.combine_pairs(dst, val, np.add, 0.0)
    on_state = kernels.set_enabled(True)
    on = kernels.combine_pairs(dst, val, np.add, 0.0)

    assert np.array_equal(off[0], on[0])
    assert np.array_equal(
        off[1].view(np.uint64), on[1].view(np.uint64)
    ), f"dispatcher diverged (accel effective: {on_state})"


def test_tiny_batches_stay_on_reference_path():
    # Below MIN_PAIRS the dispatcher must not pay the ctypes overhead;
    # both paths are bit-identical so this is observable only by the
    # hash dispatcher's None convention.
    kernels.set_enabled(True)
    small = np.arange(4, dtype=np.uint64)
    assert kernels.wang64_u64(small) is None  # caller uses its own numpy path
    big = np.arange(max(kernels.MIN_HASH, 512), dtype=np.uint64)
    out = kernels.wang64_u64(big)
    if kernels.available():
        assert out is not None
        assert np.array_equal(out, reference.wang64_u64(big))
    else:
        assert out is None
