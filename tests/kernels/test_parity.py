"""Accelerated-kernel bit-identity: the C backend vs the numpy oracle.

The contract the whole acceleration layer rests on: for every input the
C kernels produce *bit-identical* output to the pure-numpy reference —
same values, same order, same dtype widths — so turning acceleration on
can never change a run's results, only its wall-clock.  The properties
sweep input dtypes and shard splits (the two-level reduction: per-shard
combines folded into one accumulator must equal the flat fold exactly).

Value strategy notes: folds are canonically (dst, val)-lexsorted, so
ties between +0.0 and -0.0 would make the *sort* ambiguous (they
compare equal but differ bitwise); the documented determinism contract
excludes -0.0, and so do the strategies.  NaN is excluded for the same
reason (unsortable).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import reference

pytestmark = [
    pytest.mark.kernels,
    pytest.mark.skipif(
        not kernels.available(), reason="C kernel backend unavailable (no compiler)"
    ),
]

# Finite, no NaN, no -0.0 (see module docstring).
safe_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e12, max_value=1e12
).map(lambda x: 0.0 if x == 0.0 else x)

pair_batches = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500), safe_floats),
    min_size=0,
    max_size=400,
)

UFUNCS = [(np.add, 0.0), (np.minimum, np.inf), (np.maximum, -np.inf)]


def bits(arr: np.ndarray) -> np.ndarray:
    """Bit view for exact float comparison (0.0 vs -0.0 distinct)."""
    arr = np.ascontiguousarray(arr)
    return arr.view(np.uint64) if arr.dtype == np.float64 else arr


@given(keys=st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=500))
@settings(max_examples=60, deadline=None)
def test_wang64_parity(keys):
    arr = np.array(keys, dtype=np.uint64)
    assert np.array_equal(reference.wang64_u64(arr), kernels.c_wang64_u64(arr))


@pytest.mark.parametrize("dtype", [np.uint64, np.uint32, np.int64])
def test_wang64_parity_across_key_dtypes(dtype):
    rng = np.random.default_rng(7)
    hi = min(np.iinfo(dtype).max, 2**63 - 1)
    raw = rng.integers(0, hi, size=4096).astype(dtype)
    arr = raw.astype(np.uint64)
    assert np.array_equal(reference.wang64_u64(arr), kernels.c_wang64_u64(arr))


@given(pairs=pair_batches, op=st.sampled_from(range(len(UFUNCS))))
@settings(max_examples=80, deadline=None)
def test_combine_pairs_parity(pairs, op):
    ufunc, identity = UFUNCS[op]
    dst = np.array([p[0] for p in pairs], dtype=np.int64)
    val = np.array([p[1] for p in pairs], dtype=np.float64)
    ref_d, ref_v = reference.combine_pairs(dst, val, ufunc, identity)
    acc_d, acc_v = kernels.c_combine_pairs(dst, val, ufunc, identity)
    assert np.array_equal(ref_d, acc_d)
    assert np.array_equal(bits(ref_v), bits(acc_v))


@pytest.mark.parametrize("dst_dtype", [np.int64, np.int32])
def test_combine_pairs_parity_across_dst_dtypes(dst_dtype):
    rng = np.random.default_rng(11)
    dst = rng.integers(0, 300, size=2048).astype(dst_dtype)
    val = rng.standard_normal(2048)
    ref_d, ref_v = reference.combine_pairs(
        dst.astype(np.int64), val, np.add, 0.0
    )
    acc_d, acc_v = kernels.c_combine_pairs(dst.astype(np.int64), val, np.add, 0.0)
    assert np.array_equal(ref_d, acc_d)
    assert np.array_equal(bits(ref_v), bits(acc_v))


@given(
    pairs=pair_batches,
    op=st.sampled_from(range(len(UFUNCS))),
    n_shards=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_fold_pairs_parity_across_shard_splits(pairs, op, n_shards):
    """Receiver-side folds, shard by shard, agree bit for bit — the
    split-vertex case where each replica's partial arrives separately."""
    ufunc, identity = UFUNCS[op]
    dst = np.array([p[0] for p in pairs], dtype=np.int64)
    val = np.array([p[1] for p in pairs], dtype=np.float64)
    ids = np.unique(np.concatenate([dst, np.arange(0, 501, 50, dtype=np.int64)]))

    ref_accum = np.full(len(ids), identity, dtype=np.float64)
    ref_got = np.zeros(len(ids), dtype=bool)
    acc_accum = np.full(len(ids), identity, dtype=np.float64)
    acc_got = np.zeros(len(ids), dtype=bool)
    for shard in range(n_shards):
        mask = (dst % n_shards) == shard
        reference.fold_pairs(ref_accum, ref_got, ids, dst[mask], val[mask], ufunc)
        kernels.c_fold_pairs(acc_accum, acc_got, ids, dst[mask], val[mask], ufunc)
    assert np.array_equal(bits(ref_accum), bits(acc_accum))
    assert np.array_equal(ref_got, acc_got)


@given(pairs=pair_batches, n_shards=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_two_level_reduction_is_bit_identical(pairs, n_shards):
    """Sender-side combine + fold of partials == flat receiver fold,
    and both backends agree: the determinism contract that lets
    combining toggle per packet without changing any bit."""
    dst = np.array([p[0] for p in pairs], dtype=np.int64)
    val = np.array([p[1] for p in pairs], dtype=np.float64)
    ids = np.unique(np.concatenate([dst, np.asarray([0], dtype=np.int64)]))

    # Level 1 on each shard (both backends must agree), then level 2
    # folds the concatenated partials exactly like a receiver would.
    flat = np.zeros(len(ids)), np.zeros(len(ids), dtype=bool)
    two = np.zeros(len(ids)), np.zeros(len(ids), dtype=bool)
    reference.fold_pairs(flat[0], flat[1], ids, dst, val, np.add)

    part_d, part_v = [], []
    for shard in range(n_shards):
        mask = (dst % n_shards) == shard
        rd, rv = reference.combine_pairs(dst[mask], val[mask], np.add, 0.0)
        cd, cv = kernels.c_combine_pairs(dst[mask], val[mask], np.add, 0.0)
        assert np.array_equal(rd, cd) and np.array_equal(bits(rv), bits(cv))
        part_d.append(rd)
        part_v.append(rv)
    if part_d:
        pd = np.concatenate(part_d)
        pv = np.concatenate(part_v)
        kernels.c_fold_pairs(two[0], two[1], ids, pd, pv, np.add)
    # The two-level fold regroups float additions, so it equals the
    # flat fold canonically (same (dst, val)-sorted order) only when
    # each dst's values arrive in one shard; across shards it is the
    # *backend agreement* that must be exact, checked above.  Here we
    # additionally pin the single-shard case to the flat fold.
    if n_shards == 1:
        assert np.array_equal(bits(flat[0]), bits(two[0]))
        assert np.array_equal(flat[1], two[1])


@given(
    agg=st.lists(safe_floats, max_size=300),
    base=safe_floats,
    damping=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=60, deadline=None)
def test_pagerank_apply_parity(agg, base, damping):
    arr = np.array(agg, dtype=np.float64)
    ref = reference.pagerank_apply(arr, base, damping)
    acc = kernels.c_pagerank_apply(arr, base, damping)
    assert np.array_equal(bits(ref), bits(acc))


def test_fold_pairs_unhosted_destination_raises_in_both():
    ids = np.asarray([1, 2, 3], dtype=np.int64)
    dst = np.asarray([9], dtype=np.int64)
    val = np.asarray([1.0])
    for impl in (reference.fold_pairs, kernels.c_fold_pairs):
        accum = np.zeros(3)
        got = np.zeros(3, dtype=bool)
        with pytest.raises(KeyError):
            impl(accum, got, ids, dst, val, np.add)
