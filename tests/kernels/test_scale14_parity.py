"""End-to-end at RMAT scale 14: acceleration changes wall-clock only.

The micro parity suite (test_parity.py) proves each kernel bit-exact in
isolation; this module proves the *composition* — placement hashing,
sender combines, receiver folds, PageRank apply, split-vertex replicas
— stays bit-identical through a real engine run, and that the chaos
suite (drops, duplicates, retransmits, mid-run crash recovery) holds
its bit-equality invariant with the C backend underneath.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core import ElGA, PageRank
from repro.core.algorithms import WCC
from repro.gen import rmat_graph
from repro.net.faults import CrashEvent, FaultPlan

from tests.chaos.harness import assert_chaos_survives

pytestmark = [
    pytest.mark.kernels,
    pytest.mark.skipif(
        not kernels.available(), reason="C kernel backend unavailable (no compiler)"
    ),
]


@pytest.fixture(autouse=True)
def _restore_dispatch():
    before = kernels.enabled()
    yield
    kernels.set_enabled(before)


@pytest.fixture(scope="module")
def graph14():
    us, vs, n = rmat_graph(14, edge_factor=4, seed=23)
    return us, vs, n


def _run(us, vs, accel: bool, program):
    effective = kernels.set_enabled(accel)
    assert effective == accel, "backend toggle did not take effect"
    engine = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=5,
        # Low threshold so the heavy-tailed RMAT hubs actually split:
        # the two-level (combine, fold-of-partials) path must be hit.
        replication_threshold=256,
        keep_reference=False,
    )
    engine.ingest_edges(us, vs)
    result = engine.run(program)
    return result.values


def test_scale14_pagerank_bit_identical_with_acceleration(graph14):
    us, vs, _ = graph14
    accel = _run(us, vs, True, PageRank(max_iters=5))
    ref = _run(us, vs, False, PageRank(max_iters=5))
    # Dict == on float values is bitwise-exact apart from 0.0/-0.0;
    # pin the bits too so even a signed-zero drift would fail.
    assert accel == ref
    a = np.asarray([accel[k] for k in sorted(accel)])
    r = np.asarray([ref[k] for k in sorted(ref)])
    assert np.array_equal(a.view(np.uint64), r.view(np.uint64))


def test_scale14_wcc_bit_identical_with_acceleration(graph14):
    us, vs, _ = graph14
    accel = _run(us, vs, True, WCC())
    ref = _run(us, vs, False, WCC())
    assert accel == ref


def test_scale14_chaos_suite_with_acceleration(graph14):
    """The whole chaos invariant — faulted run converges bit-equal to
    the fault-free reference — with the C kernels doing the math."""
    us, vs, _ = graph14
    kernels.set_enabled(True)
    plan = FaultPlan.data_plane_chaos(
        seed=29, drop_p=0.02, dup_p=0.02, crashes=[CrashEvent(after_step=2)]
    )
    report = assert_chaos_survives(
        plan, us=us, vs=vs, programs=[PageRank(max_iters=6)]
    )
    assert report.ok
    assert report.recoveries >= 0  # crash path exercised (abrupt or drain)
    assert kernels.backend() == "c"  # acceleration stayed on throughout
