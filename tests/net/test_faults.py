"""FaultPlan policy unit tests: matching, determinism, scale plans."""

import math

import pytest

from repro.net import (
    CONTROL_PTYPES,
    DATA_PTYPES,
    CrashEvent,
    FaultPlan,
    FaultRule,
    Message,
    PacketType,
    PartitionWindow,
)


def msg(ptype=PacketType.VERTEX_MSG, src=0, dst=1):
    return Message(ptype=ptype, src=src, dst=dst)


# ---------------------------------------------------------------------------
# FaultRule matching
# ---------------------------------------------------------------------------


def test_rule_matches_ptype_filter():
    rule = FaultRule(ptypes=frozenset({PacketType.VERTEX_MSG}))
    assert rule.matches(msg(PacketType.VERTEX_MSG), now=0.0)
    assert not rule.matches(msg(PacketType.AGENT_READY), now=0.0)


def test_rule_none_ptypes_matches_everything():
    rule = FaultRule()
    for ptype in (PacketType.VERTEX_MSG, PacketType.RUN_START, PacketType.DELIVERY_ACK):
        assert rule.matches(msg(ptype), now=0.0)


def test_rule_link_filter():
    rule = FaultRule(src=3, dst=7)
    assert rule.matches(msg(src=3, dst=7), now=0.0)
    assert not rule.matches(msg(src=3, dst=8), now=0.0)
    assert not rule.matches(msg(src=4, dst=7), now=0.0)


def test_rule_time_window():
    rule = FaultRule(start_s=1.0, end_s=2.0)
    assert not rule.matches(msg(), now=0.5)
    assert rule.matches(msg(), now=1.0)
    assert rule.matches(msg(), now=1.999)
    assert not rule.matches(msg(), now=2.0)  # half-open interval


def test_rule_probability_validation():
    with pytest.raises(ValueError):
        FaultRule(drop_p=1.5)
    with pytest.raises(ValueError):
        FaultRule(dup_p=-0.1)
    with pytest.raises(ValueError):
        FaultRule(start_s=2.0, end_s=1.0)
    with pytest.raises(ValueError):
        FaultRule(reorder_window_s=-1e-3)


def test_first_matching_rule_wins():
    specific = FaultRule(name="specific", ptypes=frozenset({PacketType.VERTEX_MSG}), drop_p=1.0)
    general = FaultRule(name="general", drop_p=0.0)
    plan = FaultPlan(seed=0, rules=[specific, general])
    assert plan.decide(msg(PacketType.VERTEX_MSG), now=0.0) == []
    assert plan.decide(msg(PacketType.RUN_START), now=0.0) == [0.0]


# ---------------------------------------------------------------------------
# FaultPlan decisions
# ---------------------------------------------------------------------------


def test_no_rules_is_transparent():
    plan = FaultPlan(seed=0)
    for _ in range(100):
        assert plan.decide(msg(), now=0.0) == [0.0]
    assert sum(plan.injected.values()) == 0


def test_drop_always():
    plan = FaultPlan(seed=0, rules=[FaultRule(drop_p=1.0)])
    assert plan.decide(msg(), now=0.0) == []
    assert plan.injected["drops"] == 1


def test_duplicate_always():
    plan = FaultPlan(seed=0, rules=[FaultRule(dup_p=1.0)])
    delays = plan.decide(msg(), now=0.0)
    assert len(delays) == 2
    assert plan.injected["dups"] == 1


def test_reorder_delay_bounded_by_window():
    plan = FaultPlan(
        seed=0, rules=[FaultRule(reorder_p=1.0, reorder_window_s=2e-3)]
    )
    for _ in range(50):
        (delay,) = plan.decide(msg(), now=0.0)
        assert 0.0 <= delay <= 2e-3
    assert plan.injected["reorders"] == 50


def test_delay_spike_adds_fixed_latency():
    plan = FaultPlan(seed=0, rules=[FaultRule(delay_p=1.0, delay_spike_s=7e-3)])
    (delay,) = plan.decide(msg(), now=0.0)
    assert delay == pytest.approx(7e-3)


def test_same_seed_same_decisions():
    def trace(seed):
        plan = FaultPlan(
            seed=seed,
            rules=[FaultRule(drop_p=0.3, dup_p=0.3, reorder_p=0.3)],
        )
        return [tuple(plan.decide(msg(), now=0.0)) for _ in range(200)], dict(
            plan.injected
        )

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)


def test_probabilities_roughly_respected():
    plan = FaultPlan(seed=1, rules=[FaultRule(drop_p=0.25)])
    n = 2000
    dropped = sum(1 for _ in range(n) if plan.decide(msg(), now=0.0) == [])
    assert 0.18 < dropped / n < 0.32


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------


def test_partition_separates_across_boundary_only():
    window = PartitionWindow(group=frozenset({1, 2}), start_s=0.0, end_s=1.0)
    assert window.separates(1, 5, now=0.5)
    assert window.separates(5, 2, now=0.5)
    assert not window.separates(1, 2, now=0.5)  # both inside
    assert not window.separates(5, 6, now=0.5)  # both outside
    assert not window.separates(1, 5, now=1.0)  # window closed


def test_partition_checked_before_rules():
    plan = FaultPlan(
        seed=0,
        rules=[FaultRule(drop_p=0.0)],
        partitions=[PartitionWindow(group=frozenset({0}), start_s=0.0, end_s=1.0)],
    )
    assert plan.decide(msg(src=0, dst=1), now=0.5) == []
    assert plan.injected["partition_drops"] == 1
    assert plan.decide(msg(src=0, dst=1), now=1.5) == [0.0]


# ---------------------------------------------------------------------------
# Crash schedule -> scale plan
# ---------------------------------------------------------------------------


def test_scale_plan_compounds_removals():
    plan = FaultPlan(
        seed=0,
        crashes=[CrashEvent(after_step=5), CrashEvent(after_step=2, agents_removed=2)],
    )
    # Events sort by step; removals compound.
    assert plan.scale_plan(8) == {2: 6, 5: 5}


def test_scale_plan_refuses_total_annihilation():
    plan = FaultPlan(seed=0, crashes=[CrashEvent(after_step=1, agents_removed=4)])
    with pytest.raises(ValueError):
        plan.scale_plan(4)


def test_scale_plan_empty_without_crashes():
    assert FaultPlan(seed=0).scale_plan(4) == {}


# ---------------------------------------------------------------------------
# Preset constructors
# ---------------------------------------------------------------------------


def test_data_plane_preset_spares_control():
    plan = FaultPlan.data_plane_chaos(seed=0, drop_p=1.0)
    assert plan.decide(msg(PacketType.VERTEX_MSG), now=0.0) == []
    assert plan.decide(msg(PacketType.AGENT_READY), now=0.0) == [0.0]
    assert plan.decide(msg(PacketType.DELIVERY_ACK), now=0.0) == [0.0]


def test_control_plane_preset_spares_data():
    plan = FaultPlan.control_plane_chaos(seed=0, drop_p=1.0)
    assert plan.decide(msg(PacketType.RUN_START), now=0.0) == []
    assert plan.decide(msg(PacketType.VERTEX_MSG), now=0.0) == [0.0]


def test_full_chaos_hits_everything():
    plan = FaultPlan.full_chaos(seed=0, drop_p=1.0)
    for ptype in (PacketType.VERTEX_MSG, PacketType.RUN_START, PacketType.DELIVERY_ACK):
        assert plan.decide(msg(ptype), now=0.0) == []


def test_ptype_partition_is_disjoint():
    assert not (DATA_PTYPES & CONTROL_PTYPES)
    assert PacketType.DELIVERY_ACK not in DATA_PTYPES | CONTROL_PTYPES


def test_rule_window_defaults_open_ended():
    rule = FaultRule()
    assert rule.start_s == 0.0
    assert rule.end_s == math.inf
