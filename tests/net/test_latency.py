"""Transport model: the paper's §3.5 latency hierarchy."""

import pytest

from repro.net import TransportModel


def test_paper_latency_ordering():
    """MPI ≈ 1 µs < raw TCP ≈ 4 µs < ZeroMQ > 20 µs (§3.5)."""
    mpi = TransportModel.mpi().delay(64)
    tcp = TransportModel.raw_tcp().delay(64)
    zmq = TransportModel.zeromq().delay(64)
    assert mpi < tcp < zmq
    assert mpi == pytest.approx(1e-6, rel=0.01)
    assert tcp == pytest.approx(4e-6, rel=0.01)
    assert zmq >= 20e-6


def test_zeromq_is_20x_mpi():
    """The paper calls out MPI's ~20× lower packet latency (§4.7)."""
    ratio = TransportModel.zeromq().latency_s / TransportModel.mpi().latency_s
    assert ratio == pytest.approx(20.0, rel=0.01)


def test_bandwidth_term_grows_with_size():
    t = TransportModel.zeromq()
    assert t.delay(10**9) > t.delay(1) + 0.05  # 1 GB at 100 Gbps ≈ 80 ms


def test_intra_node_cheaper_than_inter():
    t = TransportModel.zeromq()
    assert t.delay(64, same_node=True) < t.delay(64, same_node=False)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        TransportModel.mpi().delay(-1)
