"""Message construction and payload size accounting."""

import numpy as np

from repro.net import Message, PacketType, payload_nbytes


def test_type_tags_are_single_byte():
    for ptype in PacketType:
        assert 0 < int(ptype) < 256


def test_type_tags_unique():
    values = [int(p) for p in PacketType]
    assert len(values) == len(set(values))


def test_payload_nbytes_scalars():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(7) == 8
    assert payload_nbytes(3.14) == 8
    assert payload_nbytes(True) == 8


def test_payload_nbytes_arrays():
    assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80
    assert payload_nbytes(np.zeros(10, dtype=np.int8)) == 10


def test_payload_nbytes_containers():
    # Dict field names are struct layout, not wire data: only values
    # count (32 bytes of array + 8 bytes of int here).
    payload = {"dst": np.zeros(4, dtype=np.int64), "step": 3}
    assert payload_nbytes(payload) == 32 + 8
    assert payload_nbytes([1, 2, 3]) == 24
    assert payload_nbytes(b"abcd") == 4


def test_payload_nbytes_soa_packet_is_o_arrays():
    """A struct-of-arrays data packet charges its arrays + scalar
    header fields; the field-name strings are free regardless of how
    many header fields the packet grows."""
    arrays = 10 * 8 + 10 * 8
    small = {"step": 1, "round": 2, "inc": 0,
             "dst": np.zeros(10, dtype=np.int64), "val": np.zeros(10)}
    renamed = {"a_very_long_header_field_name": 1, "another_one": 2, "x": 0,
               "dst": np.zeros(10, dtype=np.int64), "val": np.zeros(10)}
    assert payload_nbytes(small) == arrays + 3 * 8
    assert payload_nbytes(renamed) == payload_nbytes(small)


def test_payload_nbytes_object_with_nbytes():
    class Sized:
        nbytes = 1234

    assert payload_nbytes(Sized()) == 1234


def test_message_size_includes_type_byte():
    msg = Message(ptype=PacketType.VERTEX_MSG, payload=np.zeros(2, dtype=np.int64))
    assert msg.size_bytes == 1 + 16


def test_explicit_size_respected():
    msg = Message(ptype=PacketType.VERTEX_MSG, payload=None, size_bytes=999)
    assert msg.size_bytes == 999


def test_reply_correlates_request_id():
    request = Message(ptype=PacketType.REQUEST, request_id=42)
    response = request.reply(PacketType.REPLY, payload="ok")
    assert response.request_id == 42
    assert response.ptype == PacketType.REPLY
    assert response.payload == "ok"
