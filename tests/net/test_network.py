"""Network fabric: delivery, latency, ordering, stats, drops."""

import numpy as np
import pytest

from repro.net import Message, Network, PacketType, TransportModel
from repro.sim import Entity, SimKernel


class Recorder(Entity):
    def __init__(self, network, name, node=0):
        super().__init__(network, name)
        self.node = node
        self.received = []

    def handle_message(self, message):
        self.received.append((self.now, message))


def make_net(transport=None):
    kernel = SimKernel()
    return kernel, Network(kernel, transport=transport)


def send(net, src, dst, ptype=PacketType.VERTEX_MSG, payload=None):
    msg = Message(ptype=ptype, payload=payload)
    msg.src = src.address
    msg.dst = dst.address
    net.send(msg)
    return msg


def test_delivery_and_latency():
    kernel, net = make_net(TransportModel.zeromq())
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    send(net, a, b)
    kernel.run()
    assert len(b.received) == 1
    at, msg = b.received[0]
    assert at >= 20e-6  # inter-node ZeroMQ latency


def test_intra_node_is_cheaper():
    kernel, net = make_net(TransportModel.zeromq())
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=0)  # same node: ipc path
    c = Recorder(net, "c", node=1)
    send(net, a, b)
    send(net, a, c)
    kernel.run()
    assert b.received[0][0] < c.received[0][0]


def test_size_affects_delay():
    kernel, net = make_net()
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    send(net, a, b, payload=np.zeros(1, dtype=np.int64))
    send(net, a, b, payload=np.zeros(1_000_000, dtype=np.int64))
    kernel.run()
    small_at, big_at = b.received[0][0], b.received[1][0]
    assert big_at > small_at


def test_busy_sender_delays_departure():
    kernel, net = make_net()
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    a.charge(1.0)  # single-threaded sender still computing
    send(net, a, b)
    kernel.run()
    assert b.received[0][0] >= 1.0


def test_pairwise_ordering_preserved():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b", node=1)
    for i in range(10):
        send(net, a, b, payload=i)
    kernel.run()
    assert [m.payload for _, m in b.received] == list(range(10))


def test_messages_to_detached_address_are_dropped():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b)
    b.detach()
    kernel.run()
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_drops_recorded_per_packet_type():
    """Dropped-message accounting: every drop is attributed to its
    PacketType, not just a single total."""
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b, ptype=PacketType.VERTEX_MSG)
    send(net, a, b, ptype=PacketType.VERTEX_MSG)
    send(net, a, b, ptype=PacketType.EDGE_UPDATE)
    b.detach()
    kernel.run()
    assert net.stats.messages_dropped == 3
    assert net.stats.dropped_by_type[PacketType.VERTEX_MSG] == 2
    assert net.stats.dropped_by_type[PacketType.EDGE_UPDATE] == 1
    assert net.stats.drops_detached == 3
    snap = net.stats.snapshot()
    assert snap.dropped_by_type[PacketType.VERTEX_MSG] == 2


def test_drop_causes_separated():
    """Chaos drops, partition drops, and detached drops are counted
    under distinct causes (all still total into messages_dropped)."""
    from repro.net import FaultPlan, FaultRule, PartitionWindow

    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    c = Recorder(net, "c")
    plan = FaultPlan(
        seed=0,
        rules=[FaultRule(ptypes=frozenset({PacketType.VERTEX_MSG}), drop_p=1.0)],
        partitions=[
            PartitionWindow(group=frozenset({c.address}), start_s=0.0, end_s=1.0)
        ],
    )
    net.install_faults(plan, reliable=False)
    send(net, a, b, ptype=PacketType.VERTEX_MSG)  # chaos drop
    send(net, a, c, ptype=PacketType.EDGE_UPDATE)  # partition drop
    kernel.run()
    assert net.stats.drops_chaos == 1
    assert net.stats.drops_partition == 1
    assert net.stats.messages_dropped == 2
    assert net.stats.dropped_by_type[PacketType.VERTEX_MSG] == 1
    assert net.stats.dropped_by_type[PacketType.EDGE_UPDATE] == 1


def test_record_drop_rejects_unknown_cause():
    from repro.net.network import NetworkStats

    stats = NetworkStats()
    with pytest.raises(ValueError):
        stats.record_drop(Message(ptype=PacketType.VERTEX_MSG, src=0, dst=1), "gremlin")


def test_stats_accounting():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b, ptype=PacketType.VERTEX_MSG, payload=np.zeros(4, dtype=np.int64))
    send(net, a, b, ptype=PacketType.EDGE_UPDATE)
    kernel.run()
    assert net.stats.messages_sent == 2
    assert net.stats.by_type_count[PacketType.VERTEX_MSG] == 1
    assert net.stats.by_type_bytes[PacketType.VERTEX_MSG] == 1 + 32
    snap = net.stats.snapshot()
    send(net, a, b)
    kernel.run()
    assert net.stats.messages_sent - snap.messages_sent == 1


def test_missing_destination_rejected():
    _, net = make_net()
    a = Recorder(net, "a")
    msg = Message(ptype=PacketType.VERTEX_MSG)
    msg.src = a.address
    with pytest.raises(ValueError):
        net.send(msg)


def test_tap_sees_every_message():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    seen = []
    net.add_tap(lambda m: seen.append(m.ptype))
    send(net, a, b)
    kernel.run()
    assert seen == [PacketType.VERTEX_MSG]


# ---------------------------------------------------------------------------
# Reliable mode (sequenced + acknowledged + retransmitted delivery)
# ---------------------------------------------------------------------------


def make_reliable_net(plan=None, **kw):
    from repro.net import Network as Net

    kernel = SimKernel()
    net = Net(kernel, reliable=True, **kw)
    if plan is not None:
        net.install_faults(plan)
    return kernel, net


def first_window_drop_plan(ptype=PacketType.VERTEX_MSG, end_s=1e-4):
    """Drop every initial transmission (sent at t~0); retransmissions
    fire after the window closes and get through."""
    from repro.net import FaultPlan, FaultRule

    return FaultPlan(
        seed=0,
        rules=[FaultRule(ptypes=frozenset({ptype}), drop_p=1.0, end_s=end_s)],
    )


def test_reliable_mode_recovers_dropped_message():
    kernel, net = make_reliable_net(first_window_drop_plan())
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b, payload="precious")
    kernel.run()
    assert [m.payload for _, m in b.received] == ["precious"]
    assert net.stats.messages_retried >= 1
    assert net.stats.retries_by_type[PacketType.VERTEX_MSG] >= 1
    assert net.pending_reliable == 0


def test_retransmissions_do_not_inflate_traffic_counts():
    """Figure-16-style traffic figures come from messages_sent /
    by_type_count; recovery traffic must not perturb them."""
    kernel, net = make_reliable_net(first_window_drop_plan())
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    tapped = []
    net.add_tap(lambda m: tapped.append(m.ptype))
    send(net, a, b)
    kernel.run()
    assert net.stats.by_type_count[PacketType.VERTEX_MSG] == 1
    assert tapped.count(PacketType.VERTEX_MSG) == 1
    # The transport ack stream is visible but separate.
    assert net.stats.acks_sent >= 1


def test_duplicate_deliveries_suppressed():
    from repro.net import FaultPlan, FaultRule

    plan = FaultPlan(
        seed=0,
        rules=[FaultRule(ptypes=frozenset({PacketType.VERTEX_MSG}), dup_p=1.0)],
    )
    kernel, net = make_reliable_net(plan)
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    for i in range(5):
        send(net, a, b, payload=i)
    kernel.run()
    # Every message duplicated in flight, yet each dispatched only once.
    assert [m.payload for _, m in b.received] == [0, 1, 2, 3, 4]
    assert net.stats.messages_duplicated == 5
    assert net.stats.duplicates_suppressed == 5


def test_per_destination_pending_keys_do_not_collide():
    """Regression: sequence numbers are per link, so one sender's
    in-flight messages to *different* receivers share seq numbers and
    must not clobber each other's retransmit state."""
    kernel, net = make_reliable_net(first_window_drop_plan())
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    c = Recorder(net, "c")
    send(net, a, b, payload="to-b")  # seq 1 on link a->b
    send(net, a, c, payload="to-c")  # seq 1 on link a->c
    kernel.run()
    assert [m.payload for _, m in b.received] == ["to-b"]
    assert [m.payload for _, m in c.received] == ["to-c"]
    assert net.pending_reliable == 0


def test_reordered_messages_each_delivered_once():
    from repro.net import FaultPlan, FaultRule

    plan = FaultPlan(
        seed=3,
        rules=[
            FaultRule(
                ptypes=frozenset({PacketType.VERTEX_MSG}),
                reorder_p=0.8,
                reorder_window_s=5e-3,
            )
        ],
    )
    kernel, net = make_reliable_net(plan)
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    n = 30
    for i in range(n):
        send(net, a, b, payload=i)
    kernel.run()
    payloads = [m.payload for _, m in b.received]
    assert sorted(payloads) == list(range(n))  # exactly once each
    assert net.pending_reliable == 0


def test_retransmit_to_detached_destination_abandoned():
    kernel, net = make_reliable_net(first_window_drop_plan())
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b)
    b.detach()
    kernel.run()
    assert net.stats.retries_abandoned == 1
    assert net.pending_reliable == 0


def test_give_up_on_attached_destination_raises():
    """Permanent loss to a live receiver is protocol corruption, not
    business as usual — the fabric must scream."""
    from repro.net import FaultPlan, FaultRule
    from repro.sim.kernel import SimulationError

    plan = FaultPlan(
        seed=0,
        rules=[FaultRule(ptypes=frozenset({PacketType.VERTEX_MSG}), drop_p=1.0)],
    )
    kernel, net = make_reliable_net(plan, max_retries=3)
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b)
    with pytest.raises(SimulationError, match="gave up"):
        kernel.run()


def test_classic_mode_messages_carry_no_seq():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    msg = send(net, a, b)
    kernel.run()
    assert msg.seq is None
    assert net.stats.acks_sent == 0


def test_reliable_mode_fault_free_delivers_in_order():
    kernel, net = make_reliable_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    for i in range(10):
        send(net, a, b, payload=i)
    kernel.run()
    assert [m.payload for _, m in b.received] == list(range(10))
    assert net.stats.messages_retried == 0
    assert net.stats.duplicates_suppressed == 0
