"""Network fabric: delivery, latency, ordering, stats, drops."""

import numpy as np
import pytest

from repro.net import Message, Network, PacketType, TransportModel
from repro.sim import Entity, SimKernel


class Recorder(Entity):
    def __init__(self, network, name, node=0):
        super().__init__(network, name)
        self.node = node
        self.received = []

    def handle_message(self, message):
        self.received.append((self.now, message))


def make_net(transport=None):
    kernel = SimKernel()
    return kernel, Network(kernel, transport=transport)


def send(net, src, dst, ptype=PacketType.VERTEX_MSG, payload=None):
    msg = Message(ptype=ptype, payload=payload)
    msg.src = src.address
    msg.dst = dst.address
    net.send(msg)
    return msg


def test_delivery_and_latency():
    kernel, net = make_net(TransportModel.zeromq())
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    send(net, a, b)
    kernel.run()
    assert len(b.received) == 1
    at, msg = b.received[0]
    assert at >= 20e-6  # inter-node ZeroMQ latency


def test_intra_node_is_cheaper():
    kernel, net = make_net(TransportModel.zeromq())
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=0)  # same node: ipc path
    c = Recorder(net, "c", node=1)
    send(net, a, b)
    send(net, a, c)
    kernel.run()
    assert b.received[0][0] < c.received[0][0]


def test_size_affects_delay():
    kernel, net = make_net()
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    send(net, a, b, payload=np.zeros(1, dtype=np.int64))
    send(net, a, b, payload=np.zeros(1_000_000, dtype=np.int64))
    kernel.run()
    small_at, big_at = b.received[0][0], b.received[1][0]
    assert big_at > small_at


def test_busy_sender_delays_departure():
    kernel, net = make_net()
    a = Recorder(net, "a", node=0)
    b = Recorder(net, "b", node=1)
    a.charge(1.0)  # single-threaded sender still computing
    send(net, a, b)
    kernel.run()
    assert b.received[0][0] >= 1.0


def test_pairwise_ordering_preserved():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b", node=1)
    for i in range(10):
        send(net, a, b, payload=i)
    kernel.run()
    assert [m.payload for _, m in b.received] == list(range(10))


def test_messages_to_detached_address_are_dropped():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b)
    b.detach()
    kernel.run()
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_stats_accounting():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    send(net, a, b, ptype=PacketType.VERTEX_MSG, payload=np.zeros(4, dtype=np.int64))
    send(net, a, b, ptype=PacketType.EDGE_UPDATE)
    kernel.run()
    assert net.stats.messages_sent == 2
    assert net.stats.by_type_count[PacketType.VERTEX_MSG] == 1
    assert net.stats.by_type_bytes[PacketType.VERTEX_MSG] == 1 + 32
    snap = net.stats.snapshot()
    send(net, a, b)
    kernel.run()
    assert net.stats.messages_sent - snap.messages_sent == 1


def test_missing_destination_rejected():
    _, net = make_net()
    a = Recorder(net, "a")
    msg = Message(ptype=PacketType.VERTEX_MSG)
    msg.src = a.address
    with pytest.raises(ValueError):
        net.send(msg)


def test_tap_sees_every_message():
    kernel, net = make_net()
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    seen = []
    net.add_tap(lambda m: seen.append(m.ptype))
    send(net, a, b)
    kernel.run()
    assert seen == [PacketType.VERTEX_MSG]
