"""ZeroMQ-pattern socket semantics: REQ/REP, PUSH, PUB/SUB."""

import pytest

from repro.net import Message, Network, PacketType
from repro.net.sockets import PubSubSocket, PushSocket, ReqRepSocket, SocketError
from repro.sim import Entity, SimKernel


class Node(Entity):
    def __init__(self, network, name):
        super().__init__(network, name)
        self.push = PushSocket(self)
        self.req = ReqRepSocket(self)
        self.pub = PubSubSocket(self)
        self.received = []

    def handle_message(self, message):
        if message.ptype == PacketType.REQUEST:
            ReqRepSocket.reply_to(self.network, message, PacketType.REPLY, "pong")
        elif message.ptype == PacketType.REPLY:
            self.req.handle_reply(message)
        else:
            self.received.append(message)


@pytest.fixture()
def net():
    kernel = SimKernel()
    return kernel, Network(kernel)


def test_push_is_non_blocking_delivery(net):
    kernel, network = net
    a, b = Node(network, "a"), Node(network, "b")
    a.push.push(b.address, PacketType.VERTEX_MSG, {"x": 1})
    assert b.received == []  # nothing until the simulator runs
    kernel.run()
    assert len(b.received) == 1


def test_reqrep_round_trip(net):
    kernel, network = net
    a, b = Node(network, "a"), Node(network, "b")
    replies = []
    a.req.request(b.address, PacketType.REQUEST, "ping", on_reply=lambda m: replies.append(m.payload))
    kernel.run()
    assert replies == ["pong"]
    assert not a.req.busy


def test_reqrep_rejects_second_outstanding_request(net):
    _, network = net
    a, b = Node(network, "a"), Node(network, "b")
    a.req.request(b.address, PacketType.REQUEST)
    with pytest.raises(SocketError):
        a.req.request(b.address, PacketType.REQUEST)


def test_reqrep_ignores_stale_reply(net):
    _, network = net
    a = Node(network, "a")
    stale = Message(ptype=PacketType.REPLY, request_id=999)
    assert a.req.handle_reply(stale) is False


def test_pubsub_filters_by_type(net):
    kernel, network = net
    publisher = Node(network, "pub")
    sub_a, sub_b = Node(network, "sa"), Node(network, "sb")
    publisher.pub.subscribe(sub_a.address, [PacketType.DIRECTORY_UPDATE])
    publisher.pub.subscribe(
        sub_b.address, [PacketType.DIRECTORY_UPDATE, PacketType.SUPERSTEP_ADVANCE]
    )
    n1 = publisher.pub.publish(PacketType.DIRECTORY_UPDATE, "state")
    n2 = publisher.pub.publish(PacketType.SUPERSTEP_ADVANCE, "go")
    kernel.run()
    assert (n1, n2) == (2, 1)
    assert len(sub_a.received) == 1
    assert len(sub_b.received) == 2


def test_pubsub_unsubscribe(net):
    kernel, network = net
    publisher = Node(network, "pub")
    sub = Node(network, "s")
    publisher.pub.subscribe(sub.address, [PacketType.DIRECTORY_UPDATE])
    publisher.pub.unsubscribe(sub.address)
    publisher.pub.publish(PacketType.DIRECTORY_UPDATE)
    kernel.run()
    assert sub.received == []


def test_pubsub_subscriber_order_deterministic(net):
    _, network = net
    publisher = Node(network, "pub")
    subs = [Node(network, f"s{i}") for i in range(5)]
    for s in reversed(subs):
        publisher.pub.subscribe(s.address, [PacketType.DIRECTORY_UPDATE])
    order = publisher.pub.subscribers_of(PacketType.DIRECTORY_UPDATE)
    assert order == sorted(order)
