"""Shared fixtures for the observability suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ElGA, PageRank


@pytest.fixture(scope="module")
def traced_run():
    """One small traced PageRank run: (engine, result, trace)."""
    elga = ElGA(nodes=2, agents_per_node=2, seed=7, tracing=True)
    us = np.array([0, 1, 2, 3, 4, 0, 2], dtype=np.int64)
    vs = np.array([1, 2, 3, 4, 0, 2, 0], dtype=np.int64)
    elga.ingest_edges(us, vs)
    result = elga.run(PageRank(max_iters=5, tol=1e-15))
    return elga, result, elga.trace()
