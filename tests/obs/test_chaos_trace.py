"""Tracing under chaos: the ISSUE's acceptance scenario.

A traced chaos run must export a valid Chrome trace, and the diff must
(a) find *no* divergence between a fault-free reference and a chaos run
whose transport recovered every fault, and (b) pinpoint the first
divergent message when recovery reshapes the round structure.
"""

import numpy as np
import pytest

from repro.bench.chaos import (
    InvariantViolation,
    check_cluster_invariants,
    fault_matrix,
    run_chaos_scenario,
)
from repro.core import ElGA, PageRank
from repro.net.faults import CrashEvent, FaultPlan
from repro.obs import TraceSummary, diff_traces, to_chrome_trace, validate_chrome_trace

pytestmark = [pytest.mark.obs, pytest.mark.chaos]


def _graph(seed=3, n=40, m=150):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, m), rng.integers(0, n, m)


def test_recovered_chaos_run_aligns_with_reference():
    us, vs = _graph()
    plan = fault_matrix(seed=0)["data-loss"]
    report = run_chaos_scenario(
        us, vs, plan, programs=[PageRank(max_iters=6)], tracing=True
    )
    assert report.ok and report.faults_injected > 0
    assert set(report.traces) == {"reference", "chaos"}
    # Retransmits and duplicate copies are transport artifacts; logical
    # message multisets and barriers must align exactly.
    assert diff_traces(report.traces["reference"], report.traces["chaos"]) is None
    validate_chrome_trace(to_chrome_trace(report.traces["chaos"]))


@pytest.mark.recovery
def test_crash_recovery_trace_pinpoints_divergence():
    us, vs = _graph()
    plan = FaultPlan.data_plane_chaos(
        seed=2, crashes=[CrashEvent(after_step=3, abrupt=True)]
    )
    report = run_chaos_scenario(
        us,
        vs,
        plan,
        programs=[PageRank(max_iters=8)],
        heartbeat_interval=2e-3,
        checkpoint_every=2,
        tracing=True,
    )
    assert report.ok and report.recoveries == 1
    chaos = report.traces["chaos"]
    names = {e.name for e in chaos.events}
    assert {"suspect", "evict", "recover_broadcast", "recover", "restore"} <= names
    validate_chrome_trace(to_chrome_trace(chaos))
    # The rollback replays rounds the reference never ran, so the diff
    # names the earliest round whose message multiset differs.
    div = diff_traces(report.traces["reference"], chaos)
    assert div is not None
    assert div.kind in ("message", "payload")
    assert div.step is not None and div.step >= 0
    assert "diverged at superstep" in div.describe()
    summary = TraceSummary.from_trace(chaos)
    assert summary.total_compute() > 0 and summary.total_wait() > 0


def test_untraced_chaos_report_has_no_traces():
    us, vs = _graph()
    plan = fault_matrix(seed=0)["data-loss"]
    report = run_chaos_scenario(us, vs, plan, programs=[PageRank(max_iters=4)])
    assert report.ok and report.traces == {}


def test_wall_clock_timers_violate_determinism_invariant():
    from repro.bench.counters import PerfCounters

    elga = ElGA(nodes=1, agents_per_node=2, seed=1)
    elga.ingest_edges(np.arange(8), (np.arange(8) + 1) % 8)
    check_cluster_invariants(elga)  # no timers: fine
    agent = next(iter(elga.cluster.agents.values()))
    agent.perf = PerfCounters()
    with agent.perf.phase("hot_loop"):
        pass
    with pytest.raises(InvariantViolation, match="wall-clock"):
        check_cluster_invariants(elga)
    # An injected sim clock makes the same timers deterministic.
    agent.perf = PerfCounters(clock=elga.cluster.kernel.clock)
    with agent.perf.phase("hot_loop"):
        pass
    check_cluster_invariants(elga)
