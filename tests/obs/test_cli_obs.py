"""CLI trace/metrics subcommands."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace

pytestmark = pytest.mark.obs

COMMON = ["--dataset", "livejournal", "--scale", "0.05", "--max-iters", "3"]


def test_trace_subcommand_exports_valid_chrome_trace(capsys, tmp_path):
    out = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    code = main(
        ["trace", *COMMON, "--algorithm", "pagerank", "--out", str(out), "--jsonl", str(jsonl)]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "spans" in text and "straggler" in text and "perfetto" in text
    with open(out) as fh:
        validate_chrome_trace(json.load(fh))
    assert sum(1 for _ in open(jsonl)) > 0


def test_metrics_subcommand_prints_exposition(capsys):
    code = main(["metrics", *COMMON, "--algorithm", "pagerank"])
    assert code == 0
    text = capsys.readouterr().out
    assert "# TYPE elga_agents gauge" in text
    assert "elga_net_messages_total" in text
    assert "elga_charged_seconds_total" in text
