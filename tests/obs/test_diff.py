"""Trace diff: aligning runs and pinpointing the first divergence."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank
from repro.obs import Trace, diff_traces
from repro.obs.trace import Event

pytestmark = pytest.mark.obs


def _traced(seed=3, iters=3, shift=0):
    elga = ElGA(nodes=1, agents_per_node=2, seed=seed, tracing=True)
    us = np.arange(12)
    vs = (np.arange(12) + 1 + shift) % 12
    elga.ingest_edges(us, vs)
    elga.run(PageRank(max_iters=iters, tol=1e-15))
    return elga.trace()


def test_identical_runs_do_not_diverge():
    assert diff_traces(_traced(), _traced()) is None


def test_different_graphs_pinpoint_first_message():
    div = diff_traces(_traced(shift=0), _traced(shift=1))
    assert div is not None
    assert div.kind in ("payload", "message")
    assert "diverged at" in div.describe()


def test_payload_tamper_reported_as_payload_divergence():
    left, right = _traced(), _traced()
    tampered = False
    for event in right.events:
        if event.name == "send" and "digest" in event.args and event.args["step"] == 1:
            event.args["digest"] = "deadbeefdeadbeef"
            tampered = True
            break
    assert tampered
    div = diff_traces(left, right)
    assert div is not None and div.kind == "payload"
    assert div.step == 1
    assert "received a different" in div.detail
    assert "deadbeefdeadbeef" in div.detail


def test_missing_message_reported_with_side():
    left, right = _traced(), _traced()
    for i, event in enumerate(right.events):
        if event.name == "send" and "digest" in event.args and event.args["step"] == 0:
            del right.events[i]
            break
    div = diff_traces(left, right)
    assert div is not None and div.kind == "message"
    assert div.step == 0 and "only in the left trace" in div.detail


def test_barrier_divergence_when_messages_agree():
    def mk(rounds):
        return Trace(
            events=[
                Event("lead", "barrier_complete", "barrier", 0.1 * i, {"round": r, "step": r})
                for i, r in enumerate(rounds)
            ]
        )
    div = diff_traces(mk([0, 1, 2]), mk([0, 1, 3]))
    assert div is not None and div.kind == "barrier"
    shorter = diff_traces(mk([0, 1, 2]), mk([0, 1]))
    assert shorter is not None and shorter.kind == "structure"
    assert diff_traces(mk([0, 1]), mk([0, 1])) is None
