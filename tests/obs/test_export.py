"""Exporters: JSONL round-trip and Chrome trace_event schema."""

import json

import pytest

from repro.obs import (
    read_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

pytestmark = pytest.mark.obs


def test_jsonl_round_trip(traced_run, tmp_path):
    _, _, trace = traced_run
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(trace, path)
    assert n == len(trace.spans) + len(trace.events)
    back = read_jsonl(path)
    assert len(back.spans) == len(trace.spans)
    assert len(back.events) == len(trace.events)
    assert [s.name for s in back.spans] == [s.name for s in trace.spans]
    assert back.entities() == trace.entities()


def test_chrome_trace_structure(traced_run):
    _, _, trace = traced_run
    chrome = to_chrome_trace(trace)
    validate_chrome_trace(chrome)  # must not raise
    assert chrome["displayTimeUnit"] == "ms"
    events = chrome["traceEvents"]
    # One process_name metadata record per entity, stable pid mapping.
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == set(trace.entities())
    assert len({e["pid"] for e in meta}) == len(meta)
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == len(trace.spans)
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == len(trace.events)
    assert all(e["s"] == "p" for e in instants)


def test_chrome_trace_file_is_valid_json(traced_run, tmp_path):
    _, _, trace = traced_run
    path = tmp_path / "trace.json"
    write_chrome_trace(trace, path)
    with open(path) as fh:
        obj = json.load(fh)
    validate_chrome_trace(obj)


@pytest.mark.parametrize(
    "bad",
    [
        {"traceEvents": [{"ph": "X", "pid": 1, "ts": 0.0, "dur": 1.0}]},  # no name
        {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1, "ts": 0.0}]},  # bad phase
        {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": -1.0, "dur": 0}]},
        {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": 0.0, "dur": -2.0}]},
        {"traceEvents": "nope"},
        [],
    ],
)
def test_chrome_validation_rejects_malformed(bad):
    with pytest.raises(ValueError):
        validate_chrome_trace(bad)
