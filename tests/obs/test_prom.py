"""Prometheus text exposition."""

import pytest

from repro.obs import MetricFamily, render
from repro.obs.prom import agent_metric_families

pytestmark = pytest.mark.obs


def test_render_basic_family():
    fam = MetricFamily("elga_test_total", "counter", "A test counter.")
    fam.add({"agent": "0"}, 3).add({"agent": "1"}, 4.5)
    text = render([fam])
    assert "# HELP elga_test_total A test counter." in text
    assert "# TYPE elga_test_total counter" in text
    assert 'elga_test_total{agent="0"} 3' in text
    assert 'elga_test_total{agent="1"} 4.5' in text
    assert text.endswith("\n")


def test_render_unlabeled_and_escaping():
    fam = MetricFamily("x_total", "counter", "x").add({}, 1)
    assert "x_total 1\n" in render([fam])
    esc = MetricFamily("y_total", "counter", "y").add({"k": 'a"b\nc'}, 1)
    assert 'y_total{k="a\\"b\\nc"} 1' in render([esc])


@pytest.mark.parametrize(
    "name,kind,labels",
    [
        ("9bad", "counter", {}),
        ("has space", "gauge", {}),
        ("ok_total", "histogram", {}),
        ("ok_total", "counter", {"0bad": "x"}),
    ],
)
def test_render_rejects_invalid(name, kind, labels):
    fam = MetricFamily(name, kind, "h").add(labels, 1)
    with pytest.raises(ValueError):
        render([fam])


def test_agent_families_match_combine_totals():
    per_agent = {0: {"edges_processed": 3}, 1: {"edges_processed": 5}}
    fams = agent_metric_families(per_agent)
    assert [f.name for f in fams] == ["elga_edges_processed_total"]
    assert sum(v for _, v in fams[0].samples) == 8


def test_engine_exposition_end_to_end(traced_run):
    elga, _, _ = traced_run
    text = elga.prometheus_text()
    assert "# TYPE elga_agents gauge" in text
    assert "elga_agents 4" in text
    assert 'elga_updates_applied_total{agent="0"}' in text
    assert "elga_net_messages_total" in text
    assert 'elga_net_messages_by_type_total{type="VERTEX_MSG"}' in text
    assert 'elga_charged_seconds_total{entity="agent-0"}' in text
    # Control-plane fault-tolerance counters are always exposed (zero in
    # a healthy run), so failover dashboards need no conditional panels.
    assert "elga_net_lead_elections_total 0" in text
    assert "elga_net_stale_term_drops_total 0" in text
    assert "# TYPE elga_control_term gauge" in text
    assert "elga_control_term 0" in text
    # Every line is either a comment or "name[{labels}] value".
    for line in text.splitlines():
        assert line.startswith("#") or " " in line
