"""TraceSummary: per-superstep compute/wait/comms breakdown."""

import pytest

pytestmark = pytest.mark.obs


def test_one_row_per_compute_superstep(traced_run):
    _, result, summary = _summarized(traced_run)
    steps = summary.steps()
    assert len(steps) == result.steps + 1  # init + N steps
    assert steps[0].phase == "init"
    assert all(r.phase == "step" for r in steps[1:])
    assert [r.step for r in steps] == list(range(result.steps + 1))


def _summarized(traced_run):
    elga, result, trace = traced_run
    from repro.obs import TraceSummary

    return elga, result, TraceSummary.from_trace(trace)


def test_breakdown_is_populated(traced_run):
    _, _, summary = _summarized(traced_run)
    assert summary.total_compute() > 0
    assert summary.total_wait() > 0
    assert summary.total_bytes() > 0
    for row in summary.steps():
        assert row.duration > 0
        assert row.compute > 0
        assert len(row.per_agent_compute) == 4
        # Compute can never exceed the barrier-to-barrier window summed
        # over the agents that ran inside it.
        assert row.compute <= row.duration * 4 + 1e-12


def test_straggler_identified(traced_run):
    _, _, summary = _summarized(traced_run)
    for row in summary.steps():
        assert row.straggler in row.per_agent_compute
        assert row.straggler_compute == max(row.per_agent_compute.values())


def test_comms_attributed_to_rounds(traced_run):
    _, _, summary = _summarized(traced_run)
    stepped = [r for r in summary.steps() if r.comms_packets]
    assert stepped, "a PageRank run must ship data-plane packets"
    assert all(r.comms_bytes > 0 for r in stepped)


def test_format_renders_table(traced_run):
    _, result, summary = _summarized(traced_run)
    text = summary.format()
    lines = text.splitlines()
    assert "compute_ms" in lines[0] and "straggler" in lines[0]
    assert len(lines) >= 2 + result.steps
