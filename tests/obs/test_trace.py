"""Tracer recording: spans, message causality, digests, zero-cost off."""

import numpy as np
import pytest

from repro.core import ElGA, PageRank
from repro.obs import DATA_PACKET_TYPES, Tracer, payload_digest
from repro.sim.kernel import SimKernel

pytestmark = pytest.mark.obs


def test_tracer_disabled_by_default():
    elga = ElGA(nodes=1, agents_per_node=2, seed=1)
    assert elga.tracer is None
    assert elga.cluster.network.tracer is None
    with pytest.raises(RuntimeError, match="tracing is disabled"):
        elga.trace()


def test_tracer_records_on_sim_clock():
    kernel = SimKernel()
    tracer = Tracer(kernel)
    kernel.schedule(0.5, lambda: tracer.instant("x", "tick", "test"))
    kernel.run()
    assert len(tracer.events) == 1
    assert tracer.events[0].time == pytest.approx(0.5)


def test_traced_run_covers_span_taxonomy(traced_run):
    _, result, trace = traced_run
    cats = {s.cat for s in trace.spans}
    assert {"compute", "barrier", "comms", "round", "run"} <= cats
    # One compute span per agent per superstep (init + steps).
    compute = [s for s in trace.spans if s.cat == "compute"]
    assert len(compute) == 4 * (result.steps + 1)
    assert all(s.duration >= 0 for s in trace.spans)


def test_send_and_deliver_events_pair_up(traced_run):
    _, _, trace = traced_run
    sends = [e for e in trace.events if e.name == "send"]
    delivers = [e for e in trace.events if e.name == "deliver"]
    # Perfect fabric, no drops: every send arrives.
    assert len(sends) == len(delivers) > 0
    assert all(e.args["bytes"] > 0 for e in sends)
    data_types = {t.name for t in DATA_PACKET_TYPES}
    data_sends = [e for e in sends if e.args["type"] in data_types]
    assert data_sends and all("digest" in e.args for e in data_sends)
    assert all("round" in e.args for e in data_sends)


def test_barrier_complete_events_from_lead(traced_run):
    _, result, trace = traced_run
    barriers = [e for e in trace.events if e.name == "barrier_complete"]
    rounds = [e.args["round"] for e in barriers]
    assert rounds == sorted(rounds) and len(barriers) == result.steps + 1


def test_payload_digest_ignores_incarnation_fence():
    a = {"dst": np.array([1, 2]), "values": np.array([0.5, 0.25]), "inc": 0}
    b = {"dst": np.array([1, 2]), "values": np.array([0.5, 0.25]), "inc": 7}
    assert payload_digest(a) == payload_digest(b)
    c = {"dst": np.array([1, 2]), "values": np.array([0.5, 0.3]), "inc": 0}
    assert payload_digest(a) != payload_digest(c)


def test_payload_digest_canonicalizes_dict_order():
    assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})


def test_identical_seeds_produce_identical_traces():
    def run():
        elga = ElGA(nodes=1, agents_per_node=2, seed=3, tracing=True)
        elga.ingest_edges(np.arange(10), (np.arange(10) + 1) % 10)
        elga.run(PageRank(max_iters=3, tol=1e-15))
        return elga.trace()

    t1, t2 = run(), run()
    assert t1.spans == t2.spans
    assert t1.events == t2.events
