"""Load-balance metrics used by Figures 5b and 6."""

import numpy as np
import pytest

from repro.partition import edge_loads, imbalance_factor, load_distribution
from repro.partition.balance import balance_summary


def test_edge_loads_counts():
    loads = edge_loads(np.array([0, 1, 1, 2, 1]), 4)
    assert loads.tolist() == [1, 3, 1, 0]


def test_edge_loads_validates_range():
    with pytest.raises(ValueError):
        edge_loads(np.array([5]), 4)


def test_imbalance_perfect():
    assert imbalance_factor(np.array([10, 10, 10])) == 1.0


def test_imbalance_skewed():
    assert imbalance_factor(np.array([30, 10, 20])) == pytest.approx(1.5)


def test_imbalance_empty_loads():
    assert imbalance_factor(np.zeros(4)) == 1.0


def test_load_distribution_axes():
    normalized, cumulative = load_distribution(np.array([5, 15, 10]))
    assert normalized.tolist() == [0.5, 1.0, 1.5]
    assert cumulative.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_load_distribution_ideal_is_vertical_line():
    normalized, _ = load_distribution(np.full(8, 42))
    assert np.allclose(normalized, 1.0)


def test_balance_summary_fields():
    s = balance_summary(np.array([4, 6]))
    assert s["mean"] == 5
    assert s["max"] == 6
    assert s["min"] == 4
    assert s["imbalance"] == pytest.approx(1.2)
    assert s["cv"] > 0


# ---------------------------------------------------------------------------
# Degenerate inputs (empty clusters, single agents, zero loads)
# ---------------------------------------------------------------------------


def test_imbalance_no_agents_is_finite():
    """A zero-length load vector (cluster scaled to nothing between
    measurements) must yield a neutral factor, not nan or a crash."""
    result = imbalance_factor(np.array([], dtype=np.float64))
    assert result == 1.0
    assert np.isfinite(result)


def test_imbalance_single_agent():
    assert imbalance_factor(np.array([37])) == 1.0


def test_edge_loads_empty_owner_list():
    loads = edge_loads(np.array([], dtype=np.int64), 4)
    assert loads.tolist() == [0, 0, 0, 0]


def test_load_distribution_empty():
    normalized, cumulative = load_distribution(np.array([]))
    assert len(normalized) == 0
    assert len(cumulative) == 0


def test_balance_summary_empty_loads():
    s = balance_summary(np.array([]))
    assert s["mean"] == 0.0
    assert s["imbalance"] == 1.0
    assert s["cv"] == 0.0


def test_balance_summary_all_zero_loads():
    """All-zero loads (agents up, no edges yet): balanced by definition."""
    s = balance_summary(np.zeros(5))
    assert s["imbalance"] == 1.0
    assert s["cv"] == 0.0
