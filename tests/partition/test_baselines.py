"""Baseline partitioners (Blogel hash/Voronoi, GraphX vertex cuts)."""

import numpy as np
import pytest

from repro.gen import powerlaw_graph
from repro.partition import (
    canonical_random_vertex_cut,
    edge_loads,
    edge_partition_2d,
    hash_vertex_partition,
    imbalance_factor,
    random_vertex_cut,
    voronoi_partition,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(1000, 12000, alpha=2.1, seed=8)


ALL = [
    ("hash", lambda us, vs, n, P: hash_vertex_partition(us, vs, P)),
    ("rvc", lambda us, vs, n, P: random_vertex_cut(us, vs, P)),
    ("crvc", lambda us, vs, n, P: canonical_random_vertex_cut(us, vs, P)),
    ("2d", lambda us, vs, n, P: edge_partition_2d(us, vs, P)),
    (
        "voronoi",
        lambda us, vs, n, P: voronoi_partition(us, vs, n, P, np.random.default_rng(0)),
    ),
]


@pytest.mark.parametrize("name,fn", ALL, ids=[a[0] for a in ALL])
def test_owners_in_range(graph, name, fn):
    us, vs, n = graph
    owners = fn(us, vs, n, 16)
    assert owners.min() >= 0 and owners.max() < 16
    assert len(owners) == len(us)


def test_hash_partition_keeps_source_edges_together(graph):
    us, vs, n = graph
    owners = hash_vertex_partition(us, vs, 16)
    # All edges sharing a source share an owner.
    for src in np.unique(us)[:50]:
        assert len(np.unique(owners[us == src])) == 1


def test_crvc_colocates_both_directions():
    us = np.array([3, 8])
    vs = np.array([8, 3])
    owners = canonical_random_vertex_cut(us, vs, 32)
    assert owners[0] == owners[1]
    # RVC generally does not.
    rng = np.random.default_rng(0)
    u = rng.integers(0, 10_000, 500)
    v = rng.integers(0, 10_000, 500)
    fwd = random_vertex_cut(u, v, 32)
    bwd = random_vertex_cut(v, u, 32)
    assert (fwd != bwd).any()


def test_2d_bounds_vertex_replication(graph):
    us, vs, n = graph
    P = 16
    owners = edge_partition_2d(us, vs, P)
    side = int(np.ceil(np.sqrt(P)))
    for src in np.unique(us)[:50]:
        assert len(np.unique(owners[us == src])) <= side


def test_vertex_cuts_balance_edges_well(graph):
    """Edge cuts balance edges near-perfectly — the property that makes
    GraphX's partitioning look good until communication is counted."""
    us, vs, n = graph
    rvc = imbalance_factor(edge_loads(random_vertex_cut(us, vs, 16), 16))
    hashed = imbalance_factor(edge_loads(hash_vertex_partition(us, vs, 16), 16))
    assert rvc < hashed


def test_voronoi_is_worst_on_skewed_graphs(graph):
    """§4.2: Blogel-Vor is not competitive; its blocks are wildly uneven
    on skewed graphs."""
    us, vs, n = graph
    rng = np.random.default_rng(0)
    voronoi = imbalance_factor(edge_loads(voronoi_partition(us, vs, n, 16, rng), 16))
    hashed = imbalance_factor(edge_loads(hash_vertex_partition(us, vs, 16), 16))
    assert voronoi > 1.5 * hashed


def test_voronoi_unreached_vertices_assigned():
    # Two disconnected cliques; few seeds may miss one.
    us = np.array([0, 1, 2, 10, 11, 12])
    vs = np.array([1, 2, 0, 11, 12, 10])
    owners = voronoi_partition(us, vs, 13, 4, np.random.default_rng(1), seed_fraction=0.05)
    assert (owners >= 0).all()


def test_voronoi_validates_seed_fraction():
    with pytest.raises(ValueError):
        voronoi_partition(np.array([0]), np.array([1]), 2, 2, np.random.default_rng(0), seed_fraction=0)


def test_hash_partition_validates():
    with pytest.raises(ValueError):
        hash_vertex_partition(np.array([0]), np.array([1]), 0)
