"""Unit tests for the epoch-versioned PlacementCache."""

import numpy as np
import pytest

from repro.bench.counters import PerfCounters
from repro.hashing import ConsistentHashRing
from repro.partition import EdgePlacer, PlacementCache
from repro.sketch import CountMinSketch


def build_placer(hot=(), members=8, threshold=20, seed=1):
    ring = ConsistentHashRing(list(range(members)), virtual_factor=16, seed=seed)
    sketch = CountMinSketch(width=256, depth=4)
    for v in hot:
        sketch.add(np.full(100, v, dtype=np.int64))
    return EdgePlacer(ring, sketch, replication_threshold=threshold)


def edges(n=400, hot=None, hot_frac=0.1, seed=0):
    rng = np.random.default_rng(seed)
    own = rng.integers(0, 5000, size=n).astype(np.int64)
    other = rng.integers(0, 5000, size=n).astype(np.int64)
    if hot is not None:
        mask = rng.random(n) < hot_frac
        own[mask] = hot
    return own, other


def test_warm_lookup_is_bit_identical_and_all_hits():
    placer = build_placer(hot=[7])
    cache = PlacementCache().bind((1, 1, 1), placer)
    own, other = edges(hot=7)
    cold = cache.owner_of_edges(own, other)
    assert np.array_equal(cold, placer.owner_of_edges(own, other))
    warm = cache.owner_of_edges(own, other)
    assert np.array_equal(warm, cold)
    assert cache.last_misses == 0
    assert cache.last_hits == len(own)


def test_same_epoch_rebind_keeps_memos():
    placer = build_placer()
    cache = PlacementCache().bind((3, 0, 0), placer)
    own, other = edges()
    cache.owner_of_edges(own, other)
    # Same epoch, fresh placer object (what a batch-clock broadcast does).
    cache.bind((3, 0, 0), build_placer())
    cache.owner_of_edges(own, other)
    assert cache.last_misses == 0


def test_epoch_change_invalidates():
    counters = PerfCounters()
    cache = PlacementCache(counters=counters).bind((1, 0, 0), build_placer())
    own, other = edges()
    cache.owner_of_edges(own, other)
    cache.bind((2, 0, 0), build_placer())
    cache.owner_of_edges(own, other)
    assert cache.last_misses == len(own)
    assert counters.counts["placement_epoch_invalidations"] == 1


def test_none_epoch_always_invalidates():
    cache = PlacementCache().bind(None, build_placer())
    own, other = edges()
    cache.owner_of_edges(own, other)
    cache.bind(None, build_placer())
    cache.owner_of_edges(own, other)
    assert cache.last_misses == len(own)


def test_unbound_cache_raises():
    with pytest.raises(RuntimeError):
        PlacementCache().owner_of_edges(np.array([1]), np.array([2]))


def test_negative_ids_bypass_edge_memo_but_stay_correct():
    hot = -3
    placer = build_placer(hot=[hot])
    cache = PlacementCache().bind((1, 0, 0), placer)
    own = np.full(64, hot, dtype=np.int64)
    other = np.arange(-32, 32, dtype=np.int64)
    for _ in range(2):  # cold then warm
        assert np.array_equal(
            cache.owner_of_edges(own, other), placer.owner_of_edges(own, other)
        )


def test_replication_factor_and_replica_set_cached():
    placer = build_placer(hot=[9])
    cache = PlacementCache().bind((1, 0, 0), placer)
    verts = np.array([9, 1, 2, 9], dtype=np.int64)
    assert np.array_equal(
        cache.replication_factor(verts), placer.replication_factor(verts)
    )
    assert cache.replica_set(9) == placer.replica_set(9)
    # Second call must come from the memo (placer result already equal).
    assert cache.replica_set(9) == placer.replica_set(9)
    assert cache.primary_of(9) == placer.replica_set(9)[0]


def test_owner_of_vertex_rng_parity():
    placer = build_placer(hot=[9])
    cache = PlacementCache().bind((1, 0, 0), placer)
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    for v in (9, 1, 2, 9, 9):
        assert cache.owner_of_vertex(v, rng=rng_a) == placer.owner_of_vertex(
            v, rng=rng_b
        )


def test_delegates_unknown_attributes_to_placer():
    placer = build_placer()
    cache = PlacementCache().bind((1, 0, 0), placer)
    assert cache.ring is placer.ring
    assert cache.sketch is placer.sketch


def test_edge_memo_capacity_restarts_from_newest():
    placer = build_placer(hot=[7], threshold=5)
    cache = PlacementCache(max_edges=32).bind((1, 0, 0), placer)
    own = np.full(128, 7, dtype=np.int64)
    other = np.arange(128, dtype=np.int64)
    a = cache.owner_of_edges(own, other)
    assert np.array_equal(a, placer.owner_of_edges(own, other))
    # Overflowing the memo must never change answers.
    b = cache.owner_of_edges(own, other)
    assert np.array_equal(a, b)
