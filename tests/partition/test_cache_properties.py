"""Property: cached placement is bit-identical to uncached placement
across arbitrary directory churn.

Drives the same churn the directory produces — joins, leaves, sketch
flushes, split-registry growth, and batch-clock-only broadcasts (which
leave the epoch unchanged) — against one long-lived PlacementCache,
comparing every lookup (cold and warm) to a freshly built EdgePlacer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing
from repro.partition import EdgePlacer, PlacementCache
from repro.sketch import CountMinSketch

ops = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("leave"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("sketch"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("split"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("clock"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


@given(ops=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_cached_placement_identical_under_churn(ops, seed):
    rng = np.random.default_rng(seed)
    own = rng.integers(0, 200, size=120).astype(np.int64)
    other = rng.integers(0, 200, size=120).astype(np.int64)

    members = {0, 1}
    sketch = CountMinSketch(width=128, depth=4)
    split = set()
    membership_version = sketch_version = 0
    cache = PlacementCache()

    def check():
        epoch = (membership_version, sketch_version, len(split))
        placer = EdgePlacer(
            ConsistentHashRing(sorted(members), virtual_factor=8, seed=2),
            sketch,
            replication_threshold=15,
            split_gate=frozenset(split),
        )
        cache.bind(epoch, placer)
        expected = placer.owner_of_edges(own, other)
        assert np.array_equal(cache.owner_of_edges(own, other), expected)  # cold-ish
        assert np.array_equal(cache.owner_of_edges(own, other), expected)  # warm
        assert cache.last_misses == 0

    check()
    for op, arg in ops:
        if op == "join":
            if arg not in members:
                members.add(arg)
                membership_version += 1
        elif op == "leave":
            if arg in members and len(members) > 1:
                members.remove(arg)
                membership_version += 1
        elif op == "sketch":
            sketch.add(np.full(20, arg, dtype=np.int64))
            sketch_version += 1
        elif op == "split":
            # The registry only gates vertices the sketch justifies.
            sketch.add(np.full(20, arg, dtype=np.int64))
            sketch_version += 1
            split.add(arg)
        # "clock": batch-clock bump — epoch unchanged, memos must survive.
        check()
