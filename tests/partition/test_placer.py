"""EdgePlacer: the sketch + two-level consistent hashing of §3.4.1."""

import numpy as np
import pytest

from repro.hashing import ConsistentHashRing
from repro.partition import EdgePlacer, edge_loads, imbalance_factor
from repro.sketch import CountMinSketch


def make_placer(agents=8, threshold=100, split_gate=None, virtual=50):
    ring = ConsistentHashRing(range(agents), virtual_factor=virtual)
    sketch = CountMinSketch(width=2048, depth=6)
    return EdgePlacer(ring, sketch, replication_threshold=threshold, split_gate=split_gate), sketch, ring


def test_owner_is_a_member():
    placer, _, _ = make_placer()
    owners = placer.owner_of_edges(np.arange(100), np.arange(100) + 1)
    assert set(np.unique(owners)) <= set(range(8))


def test_placement_is_pure_function():
    """Every participant must compute identical placement from the same
    broadcast state."""
    placer_a, sketch_a, _ = make_placer()
    placer_b, sketch_b, _ = make_placer()
    sketch_a.add(np.full(500, 7))
    sketch_b.add(np.full(500, 7))
    us = np.random.default_rng(0).integers(0, 50, 1000)
    vs = np.random.default_rng(1).integers(0, 50, 1000)
    assert np.array_equal(placer_a.owner_of_edges(us, vs), placer_b.owner_of_edges(us, vs))


def test_low_degree_vertex_not_split():
    placer, sketch, _ = make_placer(threshold=100)
    sketch.add([5] * 50)  # below threshold
    assert placer.replication_factor(5)[0] == 1
    assert len(placer.replica_set(5)) == 1


def test_high_degree_vertex_splits():
    placer, sketch, _ = make_placer(threshold=100)
    sketch.add([9] * 350)
    k = int(placer.replication_factor(9)[0])
    assert k == 4  # 1 + 350 // 100
    assert len(placer.replica_set(9)) == 4


def test_replication_capped_at_cluster_size():
    placer, sketch, _ = make_placer(agents=3, threshold=10)
    sketch.add([1] * 1000)
    assert placer.replication_factor(1)[0] == 3


def test_split_vertex_edges_land_only_on_replicas():
    placer, sketch, _ = make_placer(threshold=100)
    sketch.add([9] * 350)
    replicas = set(placer.replica_set(9))
    others = np.arange(2000)
    owners = placer.owner_of_edges(np.full(2000, 9), others)
    assert set(np.unique(owners)) <= replicas
    # The second hash spreads edges across the replicas, not onto one.
    assert len(np.unique(owners)) == len(replicas)


def test_non_split_vertex_all_edges_one_agent():
    placer, _, _ = make_placer()
    owners = placer.owner_of_edges(np.full(100, 3), np.arange(100))
    assert len(np.unique(owners)) == 1


def test_primary_is_first_replica():
    placer, sketch, _ = make_placer(threshold=50)
    sketch.add([4] * 200)
    assert placer.primary_of(4) == placer.replica_set(4)[0]


def test_query_shortcut_spreads_over_replicas():
    placer, sketch, _ = make_placer(threshold=50)
    sketch.add([4] * 500)
    rng = np.random.default_rng(0)
    answers = {placer.owner_of_vertex(4, rng=rng) for _ in range(200)}
    assert answers == set(placer.replica_set(4))


def test_query_without_rng_returns_primary():
    placer, sketch, _ = make_placer(threshold=50)
    sketch.add([4] * 500)
    assert placer.owner_of_vertex(4) == placer.primary_of(4)


def test_split_gate_blocks_unregistered():
    placer, sketch, _ = make_placer(threshold=50, split_gate=frozenset())
    sketch.add([4] * 500)
    assert placer.replication_factor(4)[0] == 1
    placer_gated, sketch2, _ = make_placer(threshold=50, split_gate=frozenset({4}))
    sketch2.add([4] * 500)
    assert placer_gated.replication_factor(4)[0] > 1


def test_growing_k_only_moves_edges_to_new_replica():
    """Rendezvous second-level hashing: raising a vertex's replication
    factor only moves the edges the new replica claims."""
    placer, sketch, ring = make_placer(threshold=100)
    sketch.add([9] * 150)  # k = 2
    others = np.arange(3000)
    before = placer.owner_of_edges(np.full(3000, 9), others)
    sketch.add([9] * 100)  # k = 3
    after = placer.owner_of_edges(np.full(3000, 9), others)
    new_replica = placer.replica_set(9)[-1]
    moved = before != after
    assert np.all(after[moved] == new_replica)


def test_ragged_input_rejected():
    placer, _, _ = make_placer()
    with pytest.raises(ValueError):
        placer.owner_of_edges(np.arange(3), np.arange(4))


def test_empty_input():
    placer, _, _ = make_placer()
    assert len(placer.owner_of_edges(np.empty(0, np.int64), np.empty(0, np.int64))) == 0


def test_invalid_threshold():
    ring = ConsistentHashRing([0])
    with pytest.raises(ValueError):
        EdgePlacer(ring, CountMinSketch(64, 2), replication_threshold=0)


def test_splitting_improves_balance_on_skewed_load():
    """The point of the design: splitting hubs beats not splitting."""
    rng = np.random.default_rng(3)
    hub_edges = 5000
    us = np.concatenate([np.full(hub_edges, 7), rng.integers(0, 1000, 5000)])
    vs = rng.integers(0, 1000, len(us))
    degrees = np.bincount(us, minlength=1000)
    ring = ConsistentHashRing(range(16), virtual_factor=100)
    sketch = CountMinSketch(width=4096, depth=6)
    sketch.add(us)

    split = EdgePlacer(ring, sketch, replication_threshold=500)
    unsplit = EdgePlacer(ring, sketch, replication_threshold=10**9)
    bal_split = imbalance_factor(edge_loads(split.owner_of_edges(us, vs), 16))
    bal_unsplit = imbalance_factor(edge_loads(unsplit.owner_of_edges(us, vs), 16))
    assert bal_split < bal_unsplit


def test_lookup_cost_terms():
    placer, _, _ = make_placer(agents=8, virtual=50)
    terms = placer.lookup_cost_terms(100)
    assert terms["sketch_queries"] == 100
    assert terms["ring_size"] == 8 * 50
