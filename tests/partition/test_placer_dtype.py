"""Regression: placement is dtype- and sign-insensitive.

Both hash levels normalize vertex ids through ``as_u64_keys`` (int64
two's-complement bit view), so an id names the same owner whether it
arrives as int32, int64, or a negative value.
"""

import numpy as np

from repro.hashing import ConsistentHashRing, as_u64_keys
from repro.partition import EdgePlacer
from repro.sketch import CountMinSketch


def build(hot=(), threshold=20):
    ring = ConsistentHashRing(list(range(8)), virtual_factor=16, seed=1)
    sketch = CountMinSketch(width=256, depth=4)
    for v in hot:
        sketch.add(np.full(100, v, dtype=np.int64))
    return EdgePlacer(ring, sketch, replication_threshold=threshold)


def test_as_u64_keys_sign_bit_view():
    assert int(as_u64_keys(np.array([-1], dtype=np.int32))[0]) == 2**64 - 1
    assert int(as_u64_keys(np.array([-1], dtype=np.int64))[0]) == 2**64 - 1
    assert int(as_u64_keys(np.array([7], dtype=np.int16))[0]) == 7


def test_owner_same_across_input_dtypes():
    placer = build()
    own64 = np.array([5, 17, 12345, 99], dtype=np.int64)
    other64 = np.array([8, 2, 7, 30000], dtype=np.int64)
    base = placer.owner_of_edges(own64, other64)
    for dtype in (np.int32, np.int16, np.uint32):
        assert np.array_equal(
            placer.owner_of_edges(own64.astype(dtype), other64.astype(dtype)), base
        )


def test_negative_ids_place_consistently():
    hot = -5
    placer = build(hot=[hot])
    others = np.arange(-50, 50, dtype=np.int64)
    owners = placer.owner_of_edges(np.full(len(others), hot, dtype=np.int64), others)
    # Split path: every owner must come from the replica set, and the
    # int32 view of the same ids must agree exactly.
    assert set(int(o) for o in owners) <= set(placer.replica_set(hot))
    owners32 = placer.owner_of_edges(
        np.full(len(others), hot, dtype=np.int32), others.astype(np.int32)
    )
    assert np.array_equal(owners, owners32)


def test_split_and_plain_paths_agree_on_dtype():
    """The k==1 fast path and the k>1 rendezvous path both normalize;
    mixing them in one batch must not depend on input dtype."""
    hot = 7
    placer = build(hot=[hot])
    own = np.array([hot, 3, hot, 11], dtype=np.int64)
    other = np.array([1, 2, 3, 4], dtype=np.int64)
    assert np.array_equal(
        placer.owner_of_edges(own, other),
        placer.owner_of_edges(own.astype(np.int32), other.astype(np.int32)),
    )
