"""Property-based placement invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import ConsistentHashRing
from repro.partition import EdgePlacer
from repro.sketch import CountMinSketch

agent_sets = st.sets(st.integers(min_value=0, max_value=100), min_size=1, max_size=10)
edge_arrays = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500)),
    min_size=1,
    max_size=50,
)


def build(agents, degree_stream=()):
    ring = ConsistentHashRing(agents, virtual_factor=16)
    sketch = CountMinSketch(width=256, depth=4)
    if len(degree_stream):
        sketch.add(np.asarray(degree_stream, dtype=np.int64))
    return EdgePlacer(ring, sketch, replication_threshold=20)


@given(agents=agent_sets, edges=edge_arrays)
@settings(max_examples=50, deadline=None)
def test_owner_always_a_member(agents, edges):
    placer = build(agents)
    us = np.array([e[0] for e in edges])
    vs = np.array([e[1] for e in edges])
    owners = placer.owner_of_edges(us, vs)
    assert set(int(o) for o in owners) <= agents


@given(agents=agent_sets, edges=edge_arrays)
@settings(max_examples=50, deadline=None)
def test_deterministic_per_edge(agents, edges):
    placer = build(agents)
    us = np.array([e[0] for e in edges])
    vs = np.array([e[1] for e in edges])
    assert np.array_equal(placer.owner_of_edges(us, vs), placer.owner_of_edges(us, vs))


@given(agents=agent_sets, edges=edge_arrays, hot=st.integers(min_value=0, max_value=500))
@settings(max_examples=50, deadline=None)
def test_edges_of_vertex_confined_to_replica_set(agents, edges, hot):
    placer = build(agents, degree_stream=[hot] * 100)
    others = np.array([e[1] for e in edges])
    owners = placer.owner_of_edges(np.full(len(others), hot), others)
    assert set(int(o) for o in owners) <= set(placer.replica_set(hot))


@given(agents=agent_sets, hot=st.integers(min_value=0, max_value=500))
@settings(max_examples=50, deadline=None)
def test_replica_factor_never_underestimates_after_inserts(agents, hot):
    """CountMin never underestimates, so a vertex past the threshold is
    always split (may split early, never late)."""
    placer = build(agents, degree_stream=[hot] * 25)
    k = int(placer.replication_factor(hot)[0])
    assert k >= min(1 + 25 // 20, len(agents))
