"""Fenced adoption of re-weight plans: epoch discipline, idempotency,
forwarding, failover survival, and agent-side observation."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ElGACluster
from repro.core import ElGA, PageRank
from repro.gen import powerlaw_graph
from repro.net.message import Message, PacketType

pytestmark = pytest.mark.rebalance


def make_cluster(**kw):
    defaults = dict(nodes=2, agents_per_node=2, seed=1)
    defaults.update(kw)
    return ElGACluster(ClusterConfig(**defaults))


def _ingest_ring(elga: ElGA, n: int = 16) -> None:
    vs = np.arange(n)
    elga.ingest_edges(vs, (vs + 1) % n)


def test_adoption_bumps_epoch_once_and_is_idempotent():
    c = make_cluster()
    state_before = c.lead.state
    c.rebalance({0: 2.0, 1: 0.5})
    state_after = c.lead.state
    assert state_after.epoch_token != state_before.epoch_token
    assert state_after.version > state_before.version
    # Batch clock is ingest's, not the control plane's.
    assert state_after.batch_id == state_before.batch_id
    assert c.network.stats.rebalance_adoptions == 1
    assert c.current_weights() == {0: 2.0, 1: 0.5, 2: 1.0, 3: 1.0}
    # Duplicate delivery (controller replay, at-least-once transport):
    # no second epoch bump, no re-broadcast, no stat increment.
    c.rebalance({0: 2.0, 1: 0.5})
    assert c.lead.state.epoch_token == state_after.epoch_token
    assert c.lead.state.version == state_after.version
    assert c.network.stats.rebalance_adoptions == 1


def test_unit_weight_entries_collapse_out_of_the_map():
    c = make_cluster()
    c.rebalance({0: 2.0})
    assert c.lead.state.weights == {0: 2.0}
    c.rebalance({0: 1.0})
    # Re-weighting back to 1.0 removes the entry rather than pinning it.
    assert c.lead.state.weights == {}
    assert c.current_weights() == {i: 1.0 for i in range(4)}


def test_departed_members_in_plan_are_ignored():
    c = make_cluster()
    state_before = c.lead.state
    c.rebalance({99: 3.0})  # stale plan naming a never-joined agent
    assert c.lead.state.weights == {}
    assert c.lead.state.epoch_token == state_before.epoch_token


def test_nonpositive_weight_rejected():
    c = make_cluster()
    with pytest.raises(ValueError):
        c.rebalance({0: 0.0})
    with pytest.raises(ValueError):
        c.rebalance({0: -1.0})


def test_non_lead_adopt_raises_and_forwards_packet():
    c = make_cluster(n_directories=3)
    follower = next(d for d in c.directories if not d.is_lead)
    with pytest.raises(RuntimeError):
        follower.adopt_rebalance({0: 2.0})
    # The wire path still works from a follower: REBALANCE_PLAN is
    # forwarded to the lead like membership traffic.
    follower.handle_message(
        Message(ptype=PacketType.REBALANCE_PLAN, payload={"weights": {0: 2.0}})
    )
    c.settle()
    assert c.network.stats.rebalance_adoptions == 1
    assert c.current_weights()[0] == 2.0


def test_agents_observe_weights_and_count_adoptions():
    elga = ElGA(nodes=2, agents_per_node=2, seed=5)
    _ingest_ring(elga)
    loads_before = elga.cluster.edge_loads()
    report = elga.rebalance({0: 3.0, 1: 0.3, 2: 0.3, 3: 0.3})
    assert report["migrate_messages"] > 0
    assert elga.cluster.consistent()
    for agent in elga.cluster.agents.values():
        assert agent.dstate.weights == {0: 3.0, 1: 0.3, 2: 0.3, 3: 0.3}
        assert agent.metrics.rebalance_adoptions == 1
        assert agent.ring.weight_of(0) == 3.0
    loads_after = elga.cluster.edge_loads()
    # Edges followed the weights: agent 0 gained resident edges.
    assert loads_after[0] > loads_before[0]
    assert sum(loads_after.values()) == sum(loads_before.values())


def test_adopted_weights_survive_lead_failover():
    elga = ElGA(
        nodes=2,
        agents_per_node=2,
        seed=3,
        n_directories=3,
        dir_lease_interval=2e-3,
        dir_lease_timeout=6e-3,
        heartbeat_interval=0.005,
        lease_timeout=0.025,
        checkpoint_every=2,
    )
    us, vs, _ = powerlaw_graph(60, 240, alpha=2.2, seed=7)
    elga.ingest_edges(us, vs)
    elga.rebalance({0: 1.6, 2: 0.7})
    result = elga.run(PageRank(max_iters=10), crash_plan={3: {"lead": True}})
    assert result.steps == 10
    cluster = elga.cluster
    assert cluster.lead.index == 1 and cluster.lead.term == 1
    # The successor rebuilt its weight book from the replicated state:
    # the adopted plan is still in force under the new term.
    assert cluster.current_weights() == {0: 1.6, 1: 1.0, 2: 0.7, 3: 1.0}
    # And further plans adopt cleanly under the new lead.
    elga.rebalance({0: 1.0, 2: 1.0})
    assert cluster.current_weights() == {i: 1.0 for i in range(4)}


def test_config_knobs_validated():
    with pytest.raises(ValueError):
        ClusterConfig(nodes=1, agents_per_node=1, rebalance_skew_threshold=0.5)
    with pytest.raises(ValueError):
        ClusterConfig(nodes=1, agents_per_node=1, rebalance_min_weight=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(nodes=1, agents_per_node=1, rebalance_max_weight=0.5)
    with pytest.raises(ValueError):
        ClusterConfig(nodes=1, agents_per_node=1, rebalance_max_weight_delta=0.0)
