"""Result-preservation claims of the rebalance loop.

The invariant shipped with ROADMAP item 4: re-weighting the ring —
between runs or mid-run — changes *where* vertices live, never *what*
the algorithms compute.  Two qualifications, both pinned here:

* The persistent fixpoint moves with the edges bit-for-bit, so reads
  before and after a migration are identical.
* A *re-execution* under a different partition is bit-identical for
  partition-independent folds (WCC's min); float-add programs
  (PageRank) are deterministic given the plan — the same plan on the
  same graph always produces the same bits — but may differ at ULP
  level from a run under another partition, exactly like the data
  plane's documented grouping sensitivity.
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC
from repro.gen import powerlaw_graph

pytestmark = pytest.mark.rebalance

SKEW_WEIGHTS = {0: 1.8, 1: 0.6, 2: 1.0, 3: 0.7}


def _build(seed: int = 11, **overrides) -> ElGA:
    elga = ElGA(nodes=2, agents_per_node=2, seed=seed, **overrides)
    us, vs, _ = powerlaw_graph(80, 400, alpha=2.1, seed=4)
    elga.ingest_edges(us, vs)
    return elga


def test_migration_preserves_persistent_results_bitwise():
    """Every vertex's published fixpoint reads back bit-identical after
    a migration moved it to a different agent."""
    elga = _build()
    result = elga.run(PageRank(max_iters=12))
    loads_before = elga.cluster.edge_loads()
    report = elga.rebalance(SKEW_WEIGHTS)
    assert report["migrate_messages"] > 0
    assert elga.cluster.edge_loads() != loads_before
    assert elga.cluster.consistent()
    for vertex, value in result.values.items():
        got = elga.query(int(vertex), "pagerank")
        assert got == value  # bitwise: the value moved with the edge


def test_wcc_rerun_identical_across_migration():
    """WCC's min-fold is partition-independent: a full re-execution
    under the re-weighted ring reproduces the labels bit-for-bit."""
    elga = _build()
    before = elga.run(WCC()).values
    elga.rebalance(SKEW_WEIGHTS)
    after = elga.run(WCC()).values
    assert before == after


def test_mid_run_rebalance_wcc_identical_to_undisturbed_run():
    """Suspending WCC mid-run to migrate hot partitions must not change
    the answer relative to a run that never rebalanced."""
    plain = _build().run(WCC()).values
    rebalanced_engine = _build()
    result = rebalanced_engine.run(WCC(), rebalance_plan={2: SKEW_WEIGHTS})
    assert rebalanced_engine.cluster.current_weights() == {
        i: SKEW_WEIGHTS.get(i, 1.0) for i in range(4)
    }
    assert result.values == plain


def test_mid_run_rebalance_is_deterministic():
    """Two engines given the same plan produce the same bits — the
    mirror property the chaos scenarios lean on."""
    a = _build().run(PageRank(max_iters=10), rebalance_plan={3: SKEW_WEIGHTS})
    b = _build().run(PageRank(max_iters=10), rebalance_plan={3: SKEW_WEIGHTS})
    assert a.values == b.values
    assert a.steps == b.steps


def test_mid_run_rebalance_requires_sync_mode():
    elga = _build()
    with pytest.raises(ValueError):
        elga.run(WCC(), mode="async", rebalance_plan={1: SKEW_WEIGHTS})


def test_maybe_rebalance_closes_the_loop_from_trace():
    """Skewed observed load -> plan -> adoption, end to end, with the
    collected results unharmed."""
    elga = _build(tracing=True, rebalance_skew_threshold=1.1)
    result = elga.run(PageRank(max_iters=10))
    report = elga.maybe_rebalance()
    assert report is not None
    assert report["skew_predicted"] < report["skew_before"]
    assert report["migrate_messages"] > 0
    adopted = elga.cluster.current_weights()
    assert adopted == {int(k): v for k, v in report["weights"].items()}
    assert any(w != 1.0 for w in adopted.values())
    # Published results still read back bit-identical post-migration.
    for vertex in list(result.values)[:20]:
        assert elga.query(int(vertex), "pagerank") == result.values[vertex]


def test_maybe_rebalance_holds_when_balanced():
    """A cluster the planner already balanced is left alone: the loop
    reaches a fixpoint instead of dithering between plans."""
    elga = _build(tracing=True, rebalance_skew_threshold=1.1)
    elga.run(PageRank(max_iters=10))
    first = elga.maybe_rebalance()
    assert first is not None
    elga.run(PageRank(max_iters=10))
    second = elga.maybe_rebalance()
    if second is not None:  # one corrective step is tolerated...
        elga.run(PageRank(max_iters=10))
        assert elga.maybe_rebalance() is None  # ...but it must converge
