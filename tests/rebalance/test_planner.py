"""RebalancePlanner unit behavior: thresholds, bounds, fixpoints."""

import numpy as np
import pytest

from repro.rebalance import (
    RebalancePlan,
    RebalancePlanner,
    inverse_load_weights,
    normalize_loads,
)

pytestmark = pytest.mark.rebalance


def test_normalize_loads_parses_trace_entity_names():
    loads = normalize_loads({"agent-3": 7, 1: 2.5, "agent-12": 0})
    assert loads == {3: 7.0, 1: 2.5, 12: 0.0}


def test_balanced_load_emits_no_plan():
    planner = RebalancePlanner(skew_threshold=1.15)
    assert planner.plan({0: 100.0, 1: 101.0, 2: 99.0, 3: 100.0}) is None
    # The decision was still recorded (skew, predicted, emitted=False).
    assert planner.history[-1][2] is False


def test_single_agent_never_planned():
    assert RebalancePlanner().plan({0: 1e9}) is None


def test_skewed_load_emits_improving_plan():
    planner = RebalancePlanner(skew_threshold=1.15)
    plan = planner.plan({0: 400.0, 1: 100.0, 2: 100.0, 3: 100.0})
    assert plan is not None
    assert plan.skew_before == pytest.approx(400.0 / 175.0)
    assert plan.skew_predicted < plan.skew_before
    # The hot agent sheds weight; the cold ones gain.
    assert plan.weights[0] < 1.0
    assert all(plan.weights[i] > 1.0 for i in (1, 2, 3))
    assert "agent-0" in plan.reason


def test_weight_deltas_are_bounded_and_quantized():
    planner = RebalancePlanner(
        max_weight_delta=0.5, min_weight=0.25, max_weight=4.0, granularity=0.01
    )
    current = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
    plan = planner.plan({0: 10_000.0, 1: 1.0, 2: 1.0, 3: 1.0}, current)
    assert plan is not None
    for i, w in plan.weights.items():
        assert abs(w - current[i]) <= 0.5 + 1e-9
        assert 0.25 - 1e-9 <= w <= 4.0 + 1e-9
        # Quantized to the planning granularity.
        assert abs(w - round(w / 0.01) * 0.01) < 1e-9


def test_absolute_clamp_dominates_delta():
    planner = RebalancePlanner(max_weight_delta=10.0, min_weight=0.25, max_weight=2.0)
    plan = planner.plan({0: 1e6, 1: 1.0})
    assert plan is not None
    assert plan.weights[0] >= 0.25 - 1e-9
    assert plan.weights[1] <= 2.0 + 1e-9


def test_replanning_converges_to_fixpoint():
    """Feeding the planner the load profile its own plan predicts must
    converge — quantization plus the noop guard stop the dithering."""
    planner = RebalancePlanner()
    loads = {0: 320.0, 1: 80.0, 2: 80.0, 3: 80.0}
    weights = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
    for _ in range(10):
        plan = planner.plan(loads, weights)
        if plan is None:
            break
        # Proportional model: load follows the weight ratio.
        loads = {i: loads[i] * plan.weights[i] / weights[i] for i in loads}
        weights = plan.weights
    assert plan is None  # reached "balanced enough" within the horizon
    skews = [h[0] for h in planner.history]
    assert skews[-1] < skews[0]


def test_noop_plan_is_withheld():
    """Loads skewed but weights already compensating: the bounded plan
    reproduces the current weights, so nothing is emitted."""
    planner = RebalancePlanner(granularity=0.5, max_weight_delta=0.2)
    current = {0: 1.0, 1: 1.0}
    # Mild skew above threshold, but delta clamp + coarse quantization
    # bring the bounded plan back to exactly the current weights.
    assert planner.plan({0: 118.0, 1: 100.0}, current) is None


def test_inverse_load_weights_preserves_mean():
    weights = inverse_load_weights({0: 90.0, 1: 30.0, 2: 30.0})
    assert np.mean(list(weights.values())) == pytest.approx(1.0, abs=0.02)


def test_inverse_load_weights_handles_idle_agents():
    weights = inverse_load_weights({0: 100.0, 1: 0.0})
    assert all(np.isfinite(w) and w > 0 for w in weights.values())


def test_plan_is_noop_tolerance():
    plan = RebalancePlan(weights={0: 1.0, 1: 1.0 + 1e-12}, skew_before=2.0, skew_predicted=1.0)
    assert plan.is_noop({0: 1.0})  # missing members default to 1.0


def test_planner_validation():
    with pytest.raises(ValueError):
        RebalancePlanner(skew_threshold=0.9)
    with pytest.raises(ValueError):
        RebalancePlanner(min_weight=0.0)
    with pytest.raises(ValueError):
        RebalancePlanner(min_weight=1.5)
    with pytest.raises(ValueError):
        RebalancePlanner(max_weight=0.5)
    with pytest.raises(ValueError):
        RebalancePlanner(max_weight_delta=0.0)
    with pytest.raises(ValueError):
        RebalancePlanner(granularity=-0.1)
