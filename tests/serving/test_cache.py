"""Serving result cache: TTL, epoch fencing, version fencing.

The cache's correctness claim is that a stale read is *structurally*
impossible: an entry is served only if its result version matches the
proxy's latest known version, its epoch token matches the current
directory epoch, and its TTL has not lapsed on the simulated clock.
The unit tests pin each fence in isolation; the integration tests
check the fences fire through the real protocol (a delta run bumps the
version and the next read misses); the Hypothesis property checks the
cached answer always equals the ground-truth fixpoint at the same
version.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElGA, WCC
from repro.graph.stream import EdgeBatch
from repro.serving import ResultCache

pytestmark = pytest.mark.serving

EPOCH = ("e", 1)


def test_ttl_expiry_on_sim_clock():
    cache = ResultCache(ttl=1e-3, capacity=8)
    cache.put("pr", 7, 0.5, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 3))
    hit = cache.get("pr", 7, now=5e-4, epoch=EPOCH, version=1)
    assert hit is not None and hit.value == 0.5 and hit.snapshot == (1, 3)
    assert cache.get("pr", 7, now=2e-3, epoch=EPOCH, version=1) is None
    assert cache.expirations == 1
    # The expired entry was dropped, not resurrected.
    assert cache.get("pr", 7, now=6e-4, epoch=EPOCH, version=1) is None


def test_epoch_token_invalidation():
    cache = ResultCache(ttl=10.0, capacity=8)
    cache.put("pr", 7, 0.5, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 3))
    assert cache.get("pr", 7, now=0.1, epoch=("e", 2), version=1) is None
    assert cache.epoch_invalidations == 1


def test_result_version_invalidation():
    cache = ResultCache(ttl=10.0, capacity=8)
    cache.put("pr", 7, 0.5, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 3))
    assert cache.get("pr", 7, now=0.1, epoch=EPOCH, version=2) is None
    assert cache.version_invalidations == 1


def test_capacity_bound_evicts_oldest():
    cache = ResultCache(ttl=10.0, capacity=2)
    for v in range(3):
        cache.put("pr", v, float(v), now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    assert cache.evictions == 1
    assert cache.get("pr", 0, now=0.1, epoch=EPOCH, version=1) is None  # oldest out
    assert cache.get("pr", 2, now=0.1, epoch=EPOCH, version=1) is not None


def test_invalidate_program_only_hits_that_program():
    cache = ResultCache(ttl=10.0, capacity=8)
    cache.put("pr", 1, 0.1, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    cache.put("wcc", 1, 0.2, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    cache.invalidate_program("pr")
    assert cache.get("pr", 1, now=0.1, epoch=EPOCH, version=1) is None
    assert cache.get("wcc", 1, now=0.1, epoch=EPOCH, version=1) is not None


def test_invalidate_negative_drops_only_negative_entries():
    cache = ResultCache(ttl=10.0, capacity=8)
    cache.put("pr", 1, 0.1, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    cache.put("pr", 2, None, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    cache.put("wcc", 3, None, now=0.0, epoch=EPOCH, version=1, snapshot=(1, 1))
    assert cache.invalidate_negative("pr") == 1
    assert cache.negative_invalidations == 1
    # The positive entry and the other program's negative both survive.
    assert cache.get("pr", 1, now=0.1, epoch=EPOCH, version=1) is not None
    assert cache.get("pr", 2, now=0.1, epoch=EPOCH, version=1) is None
    assert cache.get("wcc", 3, now=0.1, epoch=EPOCH, version=1) is not None
    # No program filter sweeps every remaining negative.
    assert cache.invalidate_negative() == 1
    assert cache.negative_invalidations == 2


def test_zero_ttl_is_rejected():
    with pytest.raises(ValueError):
        ResultCache(ttl=0.0, capacity=8)


# -- integration: fences fire through the real protocol ---------------------


def _ring_engine(serving_cache_ttl: float = 60.0) -> ElGA:
    elga = ElGA(
        nodes=2, agents_per_node=2, seed=10, serving_cache_ttl=serving_cache_ttl
    )
    us = np.array([0, 1, 2, 3, 4, 5, 6, 7])
    vs = np.array([1, 2, 3, 4, 5, 6, 7, 0])
    elga.ingest_edges(us, vs)
    return elga


def test_version_notice_invalidates_after_incremental_run():
    """A delta run bumps the result version; the next read through the
    proxy must miss the cache and return the *new* fixpoint even though
    the TTL has decades left."""
    from repro.core import PageRank

    elga = _ring_engine(serving_cache_ttl=60.0)
    program = PageRank(max_iters=8)
    elga.run(program)
    client = elga.cluster.new_client()
    first = elga.query(3, "pagerank")
    assert len(client.cache) == 1
    version_before = client.known_versions["pagerank"]

    # Grow the graph and re-converge incrementally: same program name,
    # new fixpoint, new result version.
    elga.apply_batch(EdgeBatch.insertions(np.array([0, 3]), np.array([4, 7])))
    elga.quiesce()
    result = elga.run(program, incremental=True)
    assert client.known_versions["pagerank"] > version_before
    assert len(client.cache) == 0  # the notice eagerly dropped the entry

    second = elga.query(3, "pagerank")
    assert second == result.values[3]
    assert second != first  # the degree changes moved vertex 3's rank
    assert client.cache.hits == 0  # nothing was served across the bump


def test_flushless_ingest_invalidates_negative_entries():
    """A cached "vertex does not exist" must not outlive the ingest that
    creates the vertex.  A flush-less batch bumps only the batch clock —
    no epoch bump, no RESULT_NOTICE — so before this fix the negative
    entry was replayed from cache until the TTL lapsed."""
    elga = _ring_engine(serving_cache_ttl=60.0)
    elga.run(WCC())
    client = elga.cluster.new_client()
    assert elga.query(42, "wcc") is None  # vertex not ingested yet
    fanouts = client.fanouts_dispatched
    assert elga.query(42, "wcc") is None  # replayed from cache
    assert client.fanouts_dispatched == fanouts
    assert client.cache.hits >= 1
    # Flush-less insert of vertex 42: the batch clock moves, the
    # placement epoch does not.
    epoch_before = client.dstate.epoch_token
    elga.ingest_edges(np.array([42]), np.array([0]), flush=False)
    assert client.dstate.epoch_token == epoch_before
    assert client.cache.negative_invalidations == 1
    # The re-query goes back to the agents instead of the stale negative.
    elga.query(42, "wcc")
    assert client.fanouts_dispatched == fanouts + 1


def test_ttl_expiry_through_proxy_sim_clock():
    """With a tiny TTL, an identical repeat query re-fans-out."""
    elga = _ring_engine(serving_cache_ttl=1e-6)
    elga.run(WCC())
    client = elga.cluster.new_client()
    assert elga.query(2, "wcc") == 0.0
    fanouts = client.fanouts_dispatched
    # Idle settling does not advance the sim clock; push it past the TTL.
    elga.cluster.kernel.schedule(1e-3, lambda: None)
    elga.cluster.settle()
    assert elga.query(2, "wcc") == 0.0
    assert client.fanouts_dispatched == fanouts + 1
    assert client.cache.expirations >= 1


@functools.lru_cache(maxsize=1)
def _property_engine():
    elga = _ring_engine(serving_cache_ttl=60.0)
    result = elga.run(WCC())
    client = elga.cluster.new_client()
    return elga, client, result.values


@given(vertices=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_cached_reply_equals_bypassed_query_at_same_version(vertices):
    """For any query sequence at a fixed result version, the cached
    answer equals the ground-truth fixpoint — hits and misses are
    indistinguishable to the caller."""
    elga, client, truth = _property_engine()
    for vertex in vertices:
        out = []
        client.query(vertex, "wcc", out.append)
        elga.cluster.settle()
        assert out == [truth[vertex]]
