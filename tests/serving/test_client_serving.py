"""ClientProxy serving behavior: coalescing, admission, accounting.

Also the regression tests for the proxy accounting bug class this PR
fixes: the latency and pending buffers are bounded, a failover-retried
query contributes exactly ONE latency sample (measured from first
accept — retries lengthen the sample, they don't duplicate it), and
proxy-internal flight state drains to empty after every burst.
"""

import numpy as np
import pytest

from repro.core import ElGA, WCC
from repro.net.message import PacketType

pytestmark = pytest.mark.serving


def _engine(**overrides) -> ElGA:
    elga = ElGA(nodes=2, agents_per_node=2, seed=10, **overrides)
    us = np.array([0, 1, 2, 3, 4, 5, 6, 7])
    vs = np.array([1, 2, 3, 4, 5, 6, 7, 0])
    elga.ingest_edges(us, vs)
    elga.run(WCC())
    return elga


def test_same_key_burst_coalesces_into_one_fanout():
    elga = _engine()
    client = elga.cluster.new_client()
    stats = elga.cluster.network.stats
    queries_before = stats.by_type_count[PacketType.CLIENT_QUERY]
    out = []
    for _ in range(20):
        assert client.query(3, "wcc", out.append) == 0.0
    elga.cluster.settle()
    assert len(out) == 20 and set(out) == {0.0}
    assert client.queries_coalesced == 19
    assert client.fanouts_dispatched == 1
    # One wire message for the whole burst (vertex 3 is unsplit).
    assert stats.by_type_count[PacketType.CLIENT_QUERY] - queries_before == 1
    # Every waiter got its own latency sample.
    assert len(client.latencies) == 20


def test_coalescing_disabled_sends_one_fanout_per_query():
    elga = _engine(serving_coalesce_window=0.0, serving_cache_ttl=0.0)
    client = elga.cluster.new_client()
    stats = elga.cluster.network.stats
    queries_before = stats.by_type_count[PacketType.CLIENT_QUERY]
    out = []
    for _ in range(5):
        client.query(3, "wcc", out.append)
    elga.cluster.settle()
    assert len(out) == 5
    assert client.queries_coalesced == 0
    assert client.fanouts_dispatched == 5
    assert stats.by_type_count[PacketType.CLIENT_QUERY] - queries_before == 5


def test_admission_control_sheds_with_retry_after():
    elga = _engine(serving_max_inflight=4)
    client = elga.cluster.new_client()
    out = []
    verdicts = [client.query(v, "wcc", out.append) for v in range(8)]
    accepted = [v for v in verdicts if v == 0.0]
    shed = [v for v in verdicts if v > 0.0]
    assert len(accepted) == 4 and len(shed) == 4
    assert all(v == elga.config.serving_retry_after for v in shed)
    assert client.queries_shed == 4
    elga.cluster.settle()
    assert len(out) == 4  # shed queries never deliver
    # Capacity freed: a resubmit is admitted and answered.
    assert client.query(5, "wcc", out.append) == 0.0
    elga.cluster.settle()
    assert len(out) == 5


def test_latency_buffer_is_bounded():
    elga = _engine(serving_latency_window=8, serving_cache_ttl=0.0)
    client = elga.cluster.new_client()
    out = []
    for v in range(20):
        client.query(v % 8, "wcc", out.append)
        elga.cluster.settle()
    assert len(out) == 20
    assert len(client.latencies) == 8          # ring bounded
    assert client.latencies.total_recorded == 20  # nothing lost to accounting
    assert client.latencies.maxlen == 8


def test_proxy_internal_state_drains_after_burst():
    """The unbounded-buffer regression: after any burst, every internal
    table (_pending, _flights, _by_token) is empty again."""
    elga = _engine()
    client = elga.cluster.new_client()
    for v in range(30):
        client.query(v % 8, "wcc", lambda _: None)
    elga.cluster.settle()
    assert not client._pending
    assert not client._flights
    assert not client._by_token
    assert not client._coalesce_buf


def test_failover_retry_records_one_latency_sample():
    """A query re-issued by failover is still ONE query: one delivery,
    one latency sample, measured from the first accept (the failover
    stall shows up in the sample instead of being reset away)."""
    elga = _engine()
    cluster = elga.cluster
    client = cluster.new_client()
    # Find a vertex owned solo by some agent, then crash that owner.
    state = client.dstate
    victim, vertex = None, None
    for v in range(8):
        if v in state.split_vertices:
            continue
        victim = client.placer.owner_of_vertex(v, rng=client.rng)
        vertex = v
        break
    assert victim is not None
    cluster.crash_agent(victim)
    out = []
    client.query(vertex, "wcc", out.append)
    cluster.settle()  # dispatched at the dead agent: no reply yet
    assert out == [] and client._pending
    samples_before = len(client.latencies)
    accepted_at = next(iter(client._pending.values())).accepted_at
    cluster.lead._on_evict_confirm({"agent_id": victim, "evict": True})
    cluster.settle()
    assert len(out) == 1
    assert client.queries_retried == 1
    assert len(client.latencies) == samples_before + 1  # exactly one sample
    # The sample spans the whole failover, not just the retry leg.
    assert client.latencies[-1] >= elga.cluster.kernel.now - accepted_at - 1e-9


def test_serving_metrics_exported_via_prometheus():
    elga = _engine()
    elga.query(2, "wcc")
    text = elga.prometheus_text()
    assert "elga_client_queries_sent_total" in text
    assert "elga_serving_cache_hits_total" in text
    assert "elga_client_inflight" in text
    assert elga.serving_stats()["client_queries_sent"] == 1
