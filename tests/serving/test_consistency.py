"""Snapshot-consistent reads: no torn values across split replicas.

A split vertex lives on several agents; during a superstep those
replicas step through (run_id, step) snapshots with real skew between
their READY times.  The serving contract: a merged reply is delivered
only when every replica answered from the same snapshot (or with
bitwise-equal values); a torn fan-out is retried, never delivered.

The unit-level test injects a torn reply pair directly into the merge
path; the integration tests fire open queries throughout live
PageRank supersteps and ingest and check every delivered reply against
the per-snapshot ground truth recorded by the agents themselves.
"""

import numpy as np
import pytest

from repro.core import ElGA, PageRank, WCC

pytestmark = pytest.mark.serving


def _star_engine(**overrides) -> ElGA:
    """A hub-heavy graph whose hub (vertex 0) is split across agents."""
    elga = ElGA(
        nodes=2, agents_per_node=3, seed=11, replication_threshold=10, **overrides
    )
    star = np.arange(1, 40)
    elga.ingest_edges(np.zeros(39, dtype=np.int64), star)
    return elga


def test_split_vertex_fanout_targets_all_replicas():
    elga = _star_engine()
    elga.run(WCC())
    client = elga.cluster.new_client()
    assert 0 in client.dstate.split_vertices
    replicas = set(client.placer.replica_set(0))
    assert len(replicas) > 1
    out = []
    client.query(0, "wcc", out.append)
    elga.cluster.settle()
    assert out == [0.0]
    # The fan-out asked every replica, not a random one.
    assert client.replies_received >= len(replicas)


def test_torn_reply_pair_is_retried_not_delivered():
    """Inject two replies from different snapshots with different
    values straight into the merge path: the proxy must retry the
    fan-out rather than deliver either value."""
    elga = _star_engine(serving_cache_ttl=0.0)  # force a real fan-out
    elga.run(WCC())
    client = elga.cluster.new_client()
    out = []
    client.query(0, "wcc", out.append)
    client._flush_coalesced()  # dispatch now; race the replies by hand
    [flight] = client._flights.values()
    token = flight.token
    targets = sorted(flight.targets)
    assert len(targets) >= 2
    client._on_reply(
        {"vertex": 0, "value": 1.0, "token": token, "run_id": 7, "step": 2,
         "inc": 0, "agent_id": targets[0]}
    )
    for agent_id in targets[1:]:
        client._on_reply(
            {"vertex": 0, "value": 2.0, "token": token, "run_id": 7, "step": 3,
             "inc": 0, "agent_id": agent_id}
        )
    assert out == []                      # torn pair never delivered
    assert client.snapshot_retries == 1   # caught and counted
    elga.cluster.settle()                 # backoff elapses, re-fan-out
    assert out == [0.0]                   # consistent answer wins in the end
    assert not client._flights


def test_mixed_tags_equal_values_merge_cleanly():
    """READY-skew with bitwise-equal values is consistent by value and
    must not spin the retry loop."""
    elga = _star_engine()
    elga.run(WCC())
    client = elga.cluster.new_client()
    out = []
    client.query(0, "wcc", out.append)
    client._flush_coalesced()
    [flight] = client._flights.values()
    token = flight.token
    targets = sorted(flight.targets)
    for i, agent_id in enumerate(targets):
        client._on_reply(
            {"vertex": 0, "value": 5.0, "token": token, "run_id": 7, "step": 2 + i,
             "inc": 0, "agent_id": agent_id}
        )
    assert out == [5.0]
    assert client.snapshot_retries == 0
    assert client.snapshot_value_merges == 1


def test_queries_during_supersteps_never_torn():
    """Open queries throughout a live PageRank: every reply must match
    the hub's value at SOME single snapshot the agents actually
    published — a torn merge would match none of them."""
    elga = _star_engine(serving_cache_ttl=0.0)  # every query hits agents
    elga.run(PageRank(max_iters=6))  # seed the persistent store
    cluster = elga.cluster
    client = cluster.new_client()
    client.audit = []

    # Record the hub's value at every published snapshot, from every
    # replica's serving view, while the run below progresses (bounded
    # sampling schedule — a self-rescheduling probe would never idle).
    snapshots = {}

    def record():
        for agent in cluster.agents.values():
            view = agent._serving.get("pagerank")
            if view is None:
                continue
            ids, values, run_id, step = view
            idx = np.searchsorted(ids, 0)
            if idx < len(ids) and ids[idx] == 0:
                snapshots[(run_id, step)] = float(values[idx])

    out = []
    for i in range(40):
        cluster.kernel.schedule(
            1e-4 + i * 3e-4, lambda: client.query(0, "pagerank", out.append)
        )
    for i in range(200):
        cluster.kernel.schedule(i * 1e-4, record)
    result = elga.run(PageRank(max_iters=6))
    cluster.settle()

    assert len(out) == 40  # no query lost mid-run
    final = result.values[0]
    snapshots[("final", None)] = final
    legal = set(snapshots.values())
    for entry in client.audit:
        assert entry["value"] in legal, (
            f"torn read: {entry} matches no published snapshot {sorted(legal)}"
        )
    # The stream genuinely overlapped the run: some replies came from
    # live serving views rather than the persistent store.
    assert any(e["value"] != final for e in client.audit) or len(legal) == 1


def test_queries_during_ingest_are_answered_consistently():
    """Ingest churns placement (splits, sketches) while queries are in
    flight; every query still gets exactly one answer."""
    elga = _star_engine()
    elga.run(WCC())
    cluster = elga.cluster
    client = cluster.new_client()
    out = []
    for i in range(20):
        cluster.kernel.schedule(
            i * 2e-4, lambda v=i % 40: client.query(v, "wcc", out.append)
        )
    more = np.arange(40, 80)
    elga.ingest_edges(np.zeros(40, dtype=np.int64), more)
    cluster.settle()
    assert len(out) == 20
    assert not client._pending and not client._flights
