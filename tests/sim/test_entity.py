"""Entity base class: attach/detach, busy-time accounting."""

import pytest

from repro.net import Network
from repro.sim import Entity, SimKernel


class Recorder(Entity):
    def __init__(self, network, name):
        super().__init__(network, name)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


@pytest.fixture()
def net():
    return Network(SimKernel())


def test_attach_assigns_unique_addresses(net):
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    assert a.address != b.address
    assert net.entity_at(a.address) is a


def test_detach_removes_entity(net):
    a = Recorder(net, "a")
    a.detach()
    assert net.entity_at(a.address) is None
    assert not net.is_attached(a.address)


def test_charge_extends_busy_horizon(net):
    a = Recorder(net, "a")
    a.charge(2.0)
    assert a.available_at() == 2.0
    a.charge(1.0)  # serial work queues behind the first
    assert a.available_at() == 3.0
    assert a.busy_backlog() == 3.0


def test_charge_after_idle_gap_starts_at_now(net):
    a = Recorder(net, "a")
    a.charge(1.0)
    net.kernel.schedule(5.0, lambda: None)
    net.kernel.run()
    assert a.busy_backlog() == 0.0
    a.charge(1.0)
    assert a.available_at() == 6.0


def test_negative_charge_rejected(net):
    a = Recorder(net, "a")
    with pytest.raises(ValueError):
        a.charge(-0.1)


def test_base_handle_message_raises(net):
    e = Entity(net, "raw")
    with pytest.raises(NotImplementedError):
        e.handle_message(None)


def test_entity_has_private_rng(net):
    a = Recorder(net, "a")
    b = Recorder(net, "b")
    assert a.rng.random() != b.rng.random()
