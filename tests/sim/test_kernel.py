"""Kernel semantics: ordering, cancellation, determinism, budgets."""

import pytest

from repro.sim import EventHandle, SimKernel
from repro.sim.kernel import SimulationError


def test_events_fire_in_time_order():
    k = SimKernel()
    fired = []
    k.schedule(3.0, fired.append, "c")
    k.schedule(1.0, fired.append, "a")
    k.schedule(2.0, fired.append, "b")
    k.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    k = SimKernel()
    fired = []
    for tag in range(10):
        k.schedule(1.0, fired.append, tag)
    k.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    k = SimKernel(start_time=5.0)
    k.schedule(2.5, lambda: None)
    k.run()
    assert k.now == 7.5


def test_run_until_stops_before_later_events():
    k = SimKernel()
    fired = []
    k.schedule(1.0, fired.append, "early")
    k.schedule(10.0, fired.append, "late")
    k.run(until=5.0)
    assert fired == ["early"]
    assert k.now == 5.0
    assert k.pending == 1


def test_run_until_advances_clock_even_with_no_events():
    k = SimKernel()
    k.run(until=42.0)
    assert k.now == 42.0


def test_cancelled_event_does_not_fire():
    k = SimKernel()
    fired = []
    handle = k.schedule(1.0, fired.append, "x")
    k.schedule(0.5, fired.append, "y")
    handle.cancel()
    assert handle.cancelled
    k.run()
    assert fired == ["y"]


def test_cancel_after_fire_is_noop():
    k = SimKernel()
    handle = k.schedule(0.0, lambda: None)
    k.run()
    handle.cancel()  # must not raise


def test_scheduling_into_past_rejected():
    k = SimKernel(start_time=10.0)
    with pytest.raises(SimulationError):
        k.schedule_at(5.0, lambda: None)


def test_negative_delay_rejected():
    k = SimKernel()
    with pytest.raises(SimulationError):
        k.schedule(-1.0, lambda: None)


def test_non_finite_time_rejected():
    k = SimKernel()
    with pytest.raises(SimulationError):
        k.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        k.schedule(float("nan"), lambda: None)


def test_events_scheduled_during_run_fire():
    k = SimKernel()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            k.schedule(1.0, chain, depth + 1)

    k.schedule(0.0, chain, 0)
    k.run()
    assert fired == [0, 1, 2, 3]
    assert k.now == 3.0


def test_max_events_budget():
    k = SimKernel()

    def forever():
        k.schedule(1.0, forever)

    k.schedule(0.0, forever)
    fired = k.run(max_events=100)
    assert fired == 100


def test_run_until_idle_raises_on_runaway():
    k = SimKernel()

    def forever():
        k.schedule(1.0, forever)

    k.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        k.run_until_idle(max_events=50)


def test_kernel_not_reentrant():
    k = SimKernel()

    def recurse():
        with pytest.raises(SimulationError):
            k.run()

    k.schedule(0.0, recurse)
    k.run()


def test_step_skips_cancelled_and_returns_false_when_empty():
    k = SimKernel()
    handle = k.schedule(1.0, lambda: None)
    handle.cancel()
    assert k.step() is False
    assert k.step() is False


def test_events_processed_counter():
    k = SimKernel()
    for _ in range(5):
        k.schedule(1.0, lambda: None)
    k.run()
    assert k.events_processed == 5


def test_determinism_across_instances():
    def build_and_run():
        k = SimKernel()
        out = []
        k.schedule(1.0, out.append, 1)
        k.schedule(1.0, out.append, 2)
        k.schedule(0.5, lambda: k.schedule(0.5, out.append, 0))
        k.run()
        return out, k.now

    assert build_and_run() == build_and_run()


def test_event_handle_reports_time():
    k = SimKernel()
    handle = k.schedule(4.0, lambda: None)
    assert isinstance(handle, EventHandle)
    assert handle.time == 4.0
