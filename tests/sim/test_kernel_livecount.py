"""O(1) live-event accounting and lazy heap compaction."""

import heapq

import repro.sim.kernel as kernel_mod
from repro.sim.kernel import SimKernel


def noop():
    pass


def test_cancel_counts_pending():
    k = SimKernel()
    handles = [k.schedule(1.0, noop) for _ in range(10)]
    assert k._has_live_events()
    for h in handles:
        h.cancel()
    assert k.pending == 10  # still queued...
    assert not k._has_live_events()  # ...but none live
    assert k.run() == 0
    assert k.pending == 0


def test_double_cancel_counts_once():
    k = SimKernel()
    h = k.schedule(1.0, noop)
    h.cancel()
    h.cancel()
    assert k._cancelled_pending == 1
    assert not k._has_live_events()


def test_cancel_after_fire_is_noop():
    k = SimKernel()
    fired = []
    h = k.schedule(0.5, fired.append, 1)
    k.run()
    h.cancel()  # already fired: must not corrupt the counter
    assert k._cancelled_pending == 0
    assert fired == [1]
    assert not k._has_live_events()


def test_compaction_drops_dominant_cancelled_events():
    k = SimKernel()
    doomed = [k.schedule(10.0, noop) for _ in range(200)]
    survivors = [k.schedule(float(i), noop) for i in range(5)]
    for h in doomed:
        h.cancel()
    # Cancelled events dominated a large queue: compaction ran at least
    # once (below the size floor the remnant is left for pop to drain).
    assert k.pending < 205
    assert k.pending - k._cancelled_pending == 5
    assert k._has_live_events()
    assert k.run() == 5
    assert all(not h.cancelled for h in survivors)


def test_small_queues_skip_compaction():
    k = SimKernel()
    a = k.schedule(1.0, noop)
    k.schedule(2.0, noop)
    a.cancel()
    # Below the size floor nothing is compacted eagerly.
    assert k.pending == 2
    assert k._cancelled_pending == 1
    assert k._has_live_events()
    assert k.run() == 1


def test_firing_order_preserved_across_compaction():
    k = SimKernel()
    order = []
    doomed = [k.schedule(50.0, noop) for _ in range(100)]
    for i in range(10):
        k.schedule(float(10 - i), order.append, 10 - i)
    for h in doomed:
        h.cancel()
    k.run()
    assert order == sorted(order)


def test_cancel_storm_never_reheapifies(monkeypatch):
    """Cancellation-heavy workloads must not rebuild the timestamp heap.

    Compaction filters buckets in one pass and leaves stale times for
    the pop path to skip; a quadratic regression would show up as
    ``heapq.heapify`` calls (or a replaced heap list) during the storm.
    """

    def forbidden(*_a, **_k):  # pragma: no cover - only fires on regression
        raise AssertionError("SimKernel rebuilt its timestamp heap")

    monkeypatch.setattr(kernel_mod.heapq, "heapify", forbidden)

    k = SimKernel()
    heap_before = k._times
    fired = []
    # Many distinct timestamps so the heap is non-trivial, then cancel
    # waves big enough to trigger compaction repeatedly.
    for wave in range(8):
        doomed = [k.schedule(100.0 + wave + i * 1e-6, noop) for i in range(300)]
        k.schedule(float(wave + 1), fired.append, wave)
        for h in doomed:
            h.cancel()
        assert k._cancelled_pending * 2 <= max(k._n_queued, 1) or k._n_queued < 64
    assert k._times is heap_before  # same heap object throughout
    assert k.run() == 8
    assert fired == list(range(8))


def test_cancel_storm_cost_is_linear_in_pops(monkeypatch):
    """Stale times cost one lazy heap pop each, never a re-sort: total
    pops are bounded by distinct timestamps ever pushed."""
    pops = []
    real_pop = heapq.heappop
    monkeypatch.setattr(kernel_mod.heapq, "heappop", lambda h: pops.append(1) or real_pop(h))

    k = SimKernel()
    distinct_times = 0
    for i in range(500):
        h = k.schedule(10.0 + i, noop)  # each its own timestamp
        distinct_times += 1
        h.cancel()
    k.schedule(1.0, noop)
    distinct_times += 1
    k.run()
    assert len(pops) <= distinct_times
    assert k.pending == 0 and k._cancelled_pending == 0


def test_same_time_cohort_drains_on_one_heap_pop(monkeypatch):
    """Batched dispatch: N events sharing a timestamp cost one heap pop
    and fire in insertion order."""
    pops = []
    real_pop = heapq.heappop
    monkeypatch.setattr(kernel_mod.heapq, "heappop", lambda h: pops.append(1) or real_pop(h))

    k = SimKernel()
    order = []
    for i in range(1000):
        k.schedule(5.0, order.append, i)
    assert k.run() == 1000
    assert len(pops) == 1
    assert order == list(range(1000))
