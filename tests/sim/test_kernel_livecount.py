"""O(1) live-event accounting and lazy heap compaction."""

from repro.sim.kernel import SimKernel


def noop():
    pass


def test_cancel_counts_pending():
    k = SimKernel()
    handles = [k.schedule(1.0, noop) for _ in range(10)]
    assert k._has_live_events()
    for h in handles:
        h.cancel()
    assert k.pending == 10  # still queued...
    assert not k._has_live_events()  # ...but none live
    assert k.run() == 0
    assert k.pending == 0


def test_double_cancel_counts_once():
    k = SimKernel()
    h = k.schedule(1.0, noop)
    h.cancel()
    h.cancel()
    assert k._cancelled_pending == 1
    assert not k._has_live_events()


def test_cancel_after_fire_is_noop():
    k = SimKernel()
    fired = []
    h = k.schedule(0.5, fired.append, 1)
    k.run()
    h.cancel()  # already fired: must not corrupt the counter
    assert k._cancelled_pending == 0
    assert fired == [1]
    assert not k._has_live_events()


def test_compaction_drops_dominant_cancelled_events():
    k = SimKernel()
    doomed = [k.schedule(10.0, noop) for _ in range(200)]
    survivors = [k.schedule(float(i), noop) for i in range(5)]
    for h in doomed:
        h.cancel()
    # Cancelled events dominated a large queue: compaction ran at least
    # once (below the size floor the remnant is left for pop to drain).
    assert k.pending < 205
    assert k.pending - k._cancelled_pending == 5
    assert k._has_live_events()
    assert k.run() == 5
    assert all(not h.cancelled for h in survivors)


def test_small_queues_skip_compaction():
    k = SimKernel()
    a = k.schedule(1.0, noop)
    k.schedule(2.0, noop)
    a.cancel()
    # Below the size floor nothing is compacted eagerly.
    assert k.pending == 2
    assert k._cancelled_pending == 1
    assert k._has_live_events()
    assert k.run() == 1


def test_firing_order_preserved_across_compaction():
    k = SimKernel()
    order = []
    doomed = [k.schedule(50.0, noop) for _ in range(100)]
    for i in range(10):
        k.schedule(float(10 - i), order.append, 10 - i)
    for h in doomed:
        h.cancel()
    k.run()
    assert order == sorted(order)
