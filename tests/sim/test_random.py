"""Per-entity random stream derivation."""

import numpy as np

from repro.sim import entity_rng, substream_seed


def test_same_labels_same_seed():
    assert substream_seed(1, "agent", 5) == substream_seed(1, "agent", 5)


def test_different_root_seeds_differ():
    assert substream_seed(1, "agent", 5) != substream_seed(2, "agent", 5)


def test_different_labels_differ():
    seeds = {
        substream_seed(7, "agent", i) for i in range(100)
    } | {substream_seed(7, "streamer", i) for i in range(100)}
    assert len(seeds) == 200


def test_label_order_matters():
    assert substream_seed(0, "a", "b") != substream_seed(0, "b", "a")


def test_string_labels_are_stable_across_processes():
    # CRC-based folding, not Python hash(): a fixed expected value
    # guards against accidental reintroduction of randomized hashing.
    assert substream_seed(42, "agent", 3) == substream_seed(42, "agent", 3)
    value = substream_seed(123, "directory")
    assert 0 <= value < 2**64


def test_entity_rng_reproducible():
    a = entity_rng(9, "x", 1)
    b = entity_rng(9, "x", 1)
    assert np.array_equal(a.random(10), b.random(10))


def test_entity_rng_streams_independent():
    a = entity_rng(9, "x", 1).random(1000)
    b = entity_rng(9, "x", 2).random(1000)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.15


def test_adding_entity_does_not_perturb_others():
    """The property elasticity relies on: a new entity's stream never
    changes an existing entity's randomness."""
    before = entity_rng(3, "agent", 0).random(100)
    _ = entity_rng(3, "agent", 99)  # new entity appears
    after = entity_rng(3, "agent", 0).random(100)
    assert np.array_equal(before, after)
