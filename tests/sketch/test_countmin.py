"""CountMinSketch: guarantees, sizing, merging."""

import numpy as np
import pytest

from repro.sketch import CountMinSketch


def test_never_underestimates():
    cms = CountMinSketch(width=512, depth=6)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 300, size=10_000)
    cms.add(keys)
    truth = np.bincount(keys, minlength=300)
    est = cms.query(np.arange(300))
    assert np.all(est >= truth)


def test_error_bound_holds():
    cms = CountMinSketch(width=2048, depth=8)
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 1000, size=50_000)
    cms.add(keys)
    truth = np.bincount(keys, minlength=1000)
    est = cms.query(np.arange(1000))
    bound, confidence = cms.error_bound(confidence=True)
    over = est - truth
    # With depth 8 the failure probability is exp(-8) ≈ 0.03 % per key.
    assert confidence > 0.999
    assert (over <= bound).mean() >= confidence - 0.01


def test_exact_when_no_collisions():
    cms = CountMinSketch(width=4096, depth=8)
    cms.add(np.arange(10), counts=np.arange(10))
    assert np.array_equal(cms.query(np.arange(10)), np.arange(10))


def test_duplicate_keys_in_one_call_accumulate():
    cms = CountMinSketch(width=256, depth=4)
    cms.add([5, 5, 5])
    assert cms.query(5) >= 3
    assert cms.total == 3


def test_per_key_counts():
    cms = CountMinSketch(width=1024, depth=4)
    cms.add([1, 2], counts=[10, 20])
    assert cms.query(1) >= 10
    assert cms.query(2) >= 20
    assert cms.total == 30


def test_turnstile_deletions():
    cms = CountMinSketch(width=512, depth=4)
    cms.add([7] * 5)
    cms.remove([7] * 2)
    assert cms.query(7) >= 3
    assert cms.total == 3
    cms.remove([7] * 3)
    assert cms.query(7) >= 0
    assert cms.total == 0


def test_insert_delete_round_trip_restores_state():
    cms = CountMinSketch(width=256, depth=4)
    baseline = cms.table.copy()
    keys = np.array([1, 2, 3, 2, 1])
    cms.add(keys)
    cms.remove(keys)
    assert np.array_equal(cms.table, baseline)


def test_merge_equals_union_stream():
    a = CountMinSketch(width=512, depth=4, seed=9)
    b = CountMinSketch(width=512, depth=4, seed=9)
    both = CountMinSketch(width=512, depth=4, seed=9)
    rng = np.random.default_rng(3)
    ka = rng.integers(0, 100, 500)
    kb = rng.integers(0, 100, 500)
    a.add(ka)
    b.add(kb)
    both.add(np.concatenate([ka, kb]))
    a.merge(b)
    assert a == both
    assert a.total == both.total


def test_merge_incompatible_rejected():
    a = CountMinSketch(width=512, depth=4)
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(width=256, depth=4))
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(width=512, depth=8))
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(width=512, depth=4, seed=1))


def test_copy_is_independent():
    a = CountMinSketch(width=64, depth=2)
    a.add([1])
    b = a.copy()
    b.add([1])
    assert a.query(1) >= 1
    assert b.total == a.total + 1
    assert not (a == b)


def test_clear_and_is_empty():
    cms = CountMinSketch(width=64, depth=2)
    assert cms.is_empty()
    cms.add([1, 2, 3])
    assert not cms.is_empty()
    cms.clear()
    assert cms.is_empty()


def test_sizing_matches_paper_example():
    """§3.3.1: width 2^18 and depth 8 give 99.965 % confidence of error
    within ~1 M on a 100-billion-edge graph, in an 8 MB table."""
    m = 100e9
    width, depth = 2**18, 8
    eps = np.e / width
    assert eps * m < 1.04e6  # "within just over 1 million"
    delta = np.exp(-depth)
    assert 1 - delta > 0.99965 - 1e-4
    cms = CountMinSketch(width=width, depth=depth)
    assert cms.nbytes == width * depth * 8  # 16 MB at int64; 8 MB at int32
    cms32 = CountMinSketch(width=width, depth=depth, dtype=np.int32)
    assert cms32.nbytes == 8 * 2**20


def test_size_for_round_trip():
    width, depth = CountMinSketch.size_for(epsilon=0.001, delta=0.01)
    assert width >= np.e / 0.001 - 1
    assert depth == int(np.ceil(np.log(100)))


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        CountMinSketch(width=0, depth=4)
    with pytest.raises(ValueError):
        CountMinSketch.size_for(epsilon=2.0, delta=0.5)


def test_empty_add_and_query():
    cms = CountMinSketch(width=64, depth=2)
    cms.add(np.empty(0, dtype=np.int64))
    assert cms.is_empty()
    assert len(cms.query(np.empty(0, dtype=np.int64))) == 0


def test_seed_changes_hash_rows():
    a = CountMinSketch(width=64, depth=2, seed=0)
    b = CountMinSketch(width=64, depth=2, seed=1)
    a.add(np.arange(50))
    b.add(np.arange(50))
    assert not np.array_equal(a.table, b.table)
