"""Property-based tests for the CountMinSketch invariants ElGA relies on."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import CountMinSketch

key_lists = st.lists(st.integers(min_value=0, max_value=2**62), min_size=0, max_size=200)


@given(keys=key_lists)
@settings(max_examples=60, deadline=None)
def test_no_underestimate_ever(keys):
    """The one-direction guarantee: the replication decision may fire
    early, never late."""
    cms = CountMinSketch(width=64, depth=4)
    cms.add(np.array(keys, dtype=np.int64)) if keys else None
    truth = {}
    for k in keys:
        truth[k] = truth.get(k, 0) + 1
    for k, count in truth.items():
        assert cms.query(k) >= count


@given(keys=key_lists)
@settings(max_examples=40, deadline=None)
def test_total_tracks_stream_length(keys):
    cms = CountMinSketch(width=32, depth=2)
    if keys:
        cms.add(np.array(keys, dtype=np.int64))
    assert cms.total == len(keys)


@given(keys=key_lists)
@settings(max_examples=40, deadline=None)
def test_delete_of_inserted_restores_exactly(keys):
    """Turnstile streams that never delete an absent edge leave the
    sketch exactly where it started."""
    cms = CountMinSketch(width=32, depth=2)
    baseline = cms.table.copy()
    arr = np.array(keys, dtype=np.int64)
    if len(arr):
        cms.add(arr)
        cms.remove(arr)
    assert np.array_equal(cms.table, baseline)


@given(a_keys=key_lists, b_keys=key_lists)
@settings(max_examples=40, deadline=None)
def test_merge_commutes_with_stream_concat(a_keys, b_keys):
    a = CountMinSketch(width=64, depth=3, seed=5)
    b = CountMinSketch(width=64, depth=3, seed=5)
    c = CountMinSketch(width=64, depth=3, seed=5)
    if a_keys:
        a.add(np.array(a_keys, dtype=np.int64))
    if b_keys:
        b.add(np.array(b_keys, dtype=np.int64))
    combined = a_keys + b_keys
    if combined:
        c.add(np.array(combined, dtype=np.int64))
    a.merge(b)
    assert a == c


@given(keys=key_lists, split=st.integers(min_value=0, max_value=200))
@settings(max_examples=40, deadline=None)
def test_incremental_equals_batch(keys, split):
    """Adding in two calls equals adding once — the delta-flush path."""
    split = min(split, len(keys))
    inc = CountMinSketch(width=64, depth=3)
    one = CountMinSketch(width=64, depth=3)
    if keys[:split]:
        inc.add(np.array(keys[:split], dtype=np.int64))
    if keys[split:]:
        inc.add(np.array(keys[split:], dtype=np.int64))
    if keys:
        one.add(np.array(keys, dtype=np.int64))
    assert inc == one
