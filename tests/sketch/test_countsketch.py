"""Count Sketch: unbiased but two-sided (why ElGA uses CountMin)."""

import numpy as np
import pytest

from repro.sketch import CountMinSketch, CountSketch


def test_reasonable_point_estimates():
    cs = CountSketch(width=2048, depth=5)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 200, size=20_000)
    cs.add(keys)
    truth = np.bincount(keys, minlength=200)
    est = cs.query(np.arange(200))
    assert np.abs(est - truth).mean() < 0.05 * truth.mean()


def test_can_underestimate_unlike_countmin():
    """The structural difference §2.4 highlights: Count Sketch errors
    are two-sided, CountMin's are one-sided."""
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 5000, size=100_000)
    truth = np.bincount(keys, minlength=5000)

    cs = CountSketch(width=64, depth=3)
    cs.add(keys)
    cs_est = cs.query(np.arange(5000))
    assert (cs_est < truth).any()  # underestimates exist

    cms = CountMinSketch(width=64, depth=3)
    cms.add(keys)
    cms_est = cms.query(np.arange(5000))
    assert not (cms_est < truth).any()  # never underestimates


def test_depth_forced_odd():
    cs = CountSketch(width=64, depth=4)
    assert cs.depth % 2 == 1


def test_turnstile():
    cs = CountSketch(width=512, depth=5)
    cs.add([3] * 10)
    cs.remove([3] * 10)
    assert abs(int(cs.query(3))) <= 1
    assert cs.total == 0


def test_merge():
    a = CountSketch(width=256, depth=3, seed=2)
    b = CountSketch(width=256, depth=3, seed=2)
    a.add([1] * 5)
    b.add([1] * 7)
    a.merge(b)
    assert abs(int(a.query(1)) - 12) <= 2


def test_merge_incompatible_rejected():
    a = CountSketch(width=256, depth=3)
    with pytest.raises(ValueError):
        a.merge(CountSketch(width=128, depth=3))


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        CountSketch(width=0)
