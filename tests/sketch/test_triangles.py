"""Count-sketch triangle estimation vs the exact sparse oracle."""

import numpy as np
import pytest

from repro.gen import rmat_graph
from repro.sketch.triangles import (
    triangle_count,
    triangle_count_exact,
    triangle_count_sketch,
)


def test_single_triangle_exact():
    us = np.asarray([0, 1, 2])
    vs = np.asarray([1, 2, 0])
    assert triangle_count_exact(us, vs) == 1


def test_exact_ignores_direction_duplicates_and_self_loops():
    # K3 written with reversed duplicates and a self-loop still has
    # exactly one triangle.
    us = np.asarray([0, 1, 2, 1, 2, 0, 3])
    vs = np.asarray([1, 2, 0, 0, 1, 2, 3])
    assert triangle_count_exact(us, vs) == 1


def test_exact_matches_networkx():
    nx = pytest.importorskip("networkx")
    us, vs, _ = rmat_graph(9, edge_factor=8, seed=4)
    g = nx.Graph()
    g.add_edges_from(zip(us.tolist(), vs.tolist()))
    g.remove_edges_from(nx.selfloop_edges(g))
    expected = sum(nx.triangles(g).values()) // 3
    assert triangle_count_exact(us, vs) == expected


def test_empty_and_triangle_free():
    assert triangle_count_exact(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64)) == 0
    assert triangle_count_sketch(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64)) == 0.0
    # A star has no triangles; the sketch should say so approximately.
    us = np.zeros(20, dtype=np.int64)
    vs = np.arange(1, 21, dtype=np.int64)
    assert triangle_count_exact(us, vs) == 0
    assert abs(triangle_count_sketch(us, vs, width=128, seed=2)) < 5.0


def test_sketch_tracks_exact_within_tolerance():
    us, vs, _ = rmat_graph(10, edge_factor=8, seed=4)
    exact = triangle_count_exact(us, vs)
    assert exact > 0
    est = triangle_count_sketch(us, vs, width=256, depth=5, seed=0)
    assert abs(est - exact) / exact < 0.15


def test_sketch_deterministic_for_fixed_seed():
    us, vs, _ = rmat_graph(9, edge_factor=4, seed=6)
    a = triangle_count_sketch(us, vs, width=64, seed=3)
    b = triangle_count_sketch(us, vs, width=64, seed=3)
    assert a == b
    # A different hash family gives a different (still unbiased) draw.
    c = triangle_count_sketch(us, vs, width=64, seed=4)
    assert a != c


def test_wider_sketch_is_more_accurate():
    us, vs, _ = rmat_graph(10, edge_factor=8, seed=4)
    exact = triangle_count_exact(us, vs)
    err_narrow = abs(triangle_count_sketch(us, vs, width=32, seed=0) - exact)
    err_wide = abs(triangle_count_sketch(us, vs, width=512, seed=0) - exact)
    assert err_wide < err_narrow


def test_router():
    us = np.asarray([0, 1, 2])
    vs = np.asarray([1, 2, 0])
    assert triangle_count(us, vs, exact=True) == 1.0
    est = triangle_count(us, vs, width=64, seed=1)
    assert isinstance(est, float)
