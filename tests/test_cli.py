"""Command-line interface."""

import pytest

from repro.cli import main


def test_datasets_lists_all_rows(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "twitter-2010" in out and "pokec-x2500" in out
    assert out.count("\n") >= 15  # header + 14 rows


def test_run_pagerank(capsys):
    code = main(
        [
            "run",
            "--dataset",
            "livejournal",
            "--scale",
            "0.05",
            "--algorithm",
            "pagerank",
            "--max-iters",
            "3",
            "--top",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pagerank: 3 superstep(s)" in out
    assert "per-superstep ms" in out


def test_run_async_sssp(capsys):
    code = main(
        [
            "run",
            "--dataset",
            "skitter",
            "--scale",
            "0.05",
            "--algorithm",
            "sssp",
            "--source",
            "0",
        ]
    )
    assert code == 0
    assert "async" in capsys.readouterr().out


def test_sssp_requires_source():
    with pytest.raises(SystemExit):
        main(["run", "--algorithm", "sssp", "--scale", "0.05"])


def test_query_prints_values(capsys):
    code = main(
        [
            "query",
            "--dataset",
            "livejournal",
            "--scale",
            "0.05",
            "--algorithm",
            "wcc",
            "0",
            "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "vertex 0:" in out and "vertex 1:" in out


def test_unknown_dataset_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--dataset", "no-such-graph"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
