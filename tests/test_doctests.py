"""Execute the docstring examples across the public modules.

Every usage example shown in a docstring must actually work; this keeps
the documentation honest as the code evolves.
"""

import doctest

import pytest

import repro.bench.stats
import repro.cluster.cluster
import repro.core.algorithms.pagerank
import repro.core.algorithms.ppr
import repro.core.algorithms.sssp
import repro.core.algorithms.wcc
import repro.core.engine
import repro.core.superstep
import repro.gen.datasets
import repro.gen.rmat
import repro.gen.powerlaw
import repro.graph.csr
import repro.graph.dynamic
import repro.graph.io
import repro.hashing.hashes
import repro.hashing.ring
import repro.partition.placer
import repro.sim.kernel
import repro.sim.random
import repro.sketch.countmin
import repro.sketch.countsketch

MODULES = [
    repro.bench.stats,
    repro.cluster.cluster,
    repro.core.algorithms.pagerank,
    repro.core.algorithms.ppr,
    repro.core.algorithms.sssp,
    repro.core.algorithms.wcc,
    repro.core.engine,
    repro.core.superstep,
    repro.gen.datasets,
    repro.gen.rmat,
    repro.gen.powerlaw,
    repro.graph.csr,
    repro.graph.dynamic,
    repro.graph.io,
    repro.hashing.hashes,
    repro.hashing.ring,
    repro.partition.placer,
    repro.sim.kernel,
    repro.sim.random,
    repro.sketch.countmin,
    repro.sketch.countsketch,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failure(s)"


def test_docstring_examples_exist():
    """The suite above must actually be exercising something."""
    total = sum(doctest.testmod(m, verbose=False).attempted for m in MODULES)
    assert total >= 25
