"""Smoke-run every example script (they must not rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its scenario


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "streaming_social_network",
        "elastic_burst_handling",
        "web_crawl_reachability",
    } <= names
